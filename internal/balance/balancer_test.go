package balance

import (
	"sync"
	"testing"
	"time"

	"eris/internal/aeu"
	"eris/internal/colstore"
	"eris/internal/csbtree"
	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

const testObj routing.ObjectID = 1

type rig struct {
	machine *numasim.Machine
	router  *routing.Router
	aeus    []*aeu.AEU
	bal     *Balancer
	wg      sync.WaitGroup
}

// newRig builds n AEUs on a single node with a range index over [0,domain)
// and a balancer with a tiny virtual sampling window.
func newRig(t *testing.T, n int, domain uint64, kind routing.TableKind) *rig {
	t.Helper()
	machine, err := numasim.New(topology.SingleNode(n), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mems := mem.NewSystem(machine)
	router, err := routing.New(machine, mems, n, routing.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{machine: machine, router: router}
	cfg := prefixtree.Config{KeyBits: 32, PrefixBits: 8}
	store, err := prefixtree.NewStore(machine, mems.Node(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]csbtree.Entry, n)
	span := domain / uint64(n)
	for i := 0; i < n; i++ {
		a := aeu.New(router, mems, uint32(i), aeu.Config{})
		if kind == routing.RangePartitioned {
			lo := uint64(i) * span
			hi := lo + span - 1
			if i == n-1 {
				hi = domain - 1
			}
			if _, err := a.AddIndexPartition(testObj, store, lo, hi); err != nil {
				t.Fatal(err)
			}
			entries[i] = csbtree.Entry{Low: lo, Owner: uint32(i)}
		} else {
			if _, err := a.AddColumnPartition(testObj, colstore.Config{ChunkEntries: 64}); err != nil {
				t.Fatal(err)
			}
		}
		r.aeus = append(r.aeus, a)
	}
	if kind == routing.RangePartitioned {
		entries[0].Low = 0
		if err := router.RegisterRange(testObj, entries); err != nil {
			t.Fatal(err)
		}
	} else {
		holders := make([]uint32, n)
		for i := range holders {
			holders[i] = uint32(i)
		}
		if err := router.RegisterSize(testObj, holders); err != nil {
			t.Fatal(err)
		}
	}
	aeu.RegisterPeers(r.aeus)
	r.bal = New(router, r.aeus, Config{SampleIntervalSec: 20e-6, Threshold: 0.2, PollReal: 100 * time.Microsecond})
	for _, a := range r.aeus {
		a.SetEpochDone(r.bal.Ack)
	}
	return r
}

func (r *rig) start() {
	for _, a := range r.aeus {
		r.wg.Add(1)
		go func(a *aeu.AEU) {
			defer r.wg.Done()
			a.Run()
		}(a)
	}
	go r.bal.Run()
}

func (r *rig) stop() {
	r.bal.Stop()
	for _, a := range r.aeus {
		a.Stop()
	}
	r.wg.Wait()
	for round := 0; round < 8; round++ {
		busy := false
		for _, a := range r.aeus {
			if a.Settle() {
				busy = true
			}
		}
		if !busy {
			break
		}
	}
}

func TestBalancerTriggersOnSkew(t *testing.T) {
	r := newRig(t, 4, 4000, routing.RangePartitioned)
	r.bal.Watch(testObj, 4000, AccessFrequency, OneShot{})
	// Load keys and skew the access counters by hand: AEU 0 does all work.
	for i, a := range r.aeus {
		p := a.Partition(testObj)
		for k := p.Lo; k <= p.Hi; k++ {
			p.Tree.Upsert(a.Core, k, k, 16)
		}
		if i == 0 {
			p := a.Partition(testObj)
			pAccesses(p, 1000)
		}
	}
	r.start()
	// Keep the skew alive and the clocks moving until a cycle happens.
	deadline := time.Now().Add(20 * time.Second)
	for len(r.bal.Cycles()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("balancer never triggered")
		}
		pAccesses(r.aeus[0].Partition(testObj), 100)
		for c := 0; c < 4; c++ {
			r.machine.AdvanceNS(topology.CoreID(c), 10_000)
		}
		time.Sleep(time.Millisecond)
	}
	r.stop()
	cycles := r.bal.Cycles()
	if cycles[0].Algorithm != "One-Shot" || cycles[0].Imbalance <= 0.2 {
		t.Fatalf("cycle = %+v", cycles[0])
	}
	// AEU 0's range must have shrunk.
	entries := r.router.OwnerEntries(testObj)
	if entries[1].Low >= 1000 {
		t.Fatalf("entries after cycle = %+v", entries)
	}
	// All keys still present somewhere.
	var total int64
	for _, a := range r.aeus {
		total += a.Partition(testObj).Tree.Count()
	}
	if total != 4000 {
		t.Fatalf("keys after rebalance = %d", total)
	}
}

func TestBalancerIgnoresBalancedLoad(t *testing.T) {
	r := newRig(t, 4, 4000, routing.RangePartitioned)
	r.bal.Watch(testObj, 4000, AccessFrequency, OneShot{})
	r.start()
	for i := 0; i < 10; i++ {
		for _, a := range r.aeus {
			pAccesses(a.Partition(testObj), 50)
			r.machine.AdvanceNS(a.Core, 10_000)
		}
		time.Sleep(time.Millisecond)
	}
	r.stop()
	if n := len(r.bal.Cycles()); n != 0 {
		t.Fatalf("balanced load triggered %d cycles", n)
	}
}

func TestBalancerSizeMetric(t *testing.T) {
	r := newRig(t, 4, 4000, routing.SizePartitioned)
	r.bal.Watch(testObj, 0, PhysicalSize, OneShot{})
	// AEU 0 holds all the data.
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = uint64(i)
	}
	r.aeus[0].Partition(testObj).Col.Append(0, vals)
	r.start()
	deadline := time.Now().Add(20 * time.Second)
	for len(r.bal.Cycles()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("size balancer never triggered")
		}
		for c := 0; c < 4; c++ {
			r.machine.AdvanceNS(topology.CoreID(c), 10_000)
		}
		time.Sleep(time.Millisecond)
	}
	r.stop()
	// Tuples redistributed toward the average (250 each).
	var counts []int64
	var total int64
	for _, a := range r.aeus {
		c := a.Partition(testObj).Col.Count()
		counts = append(counts, c)
		total += c
	}
	if total != 1000 {
		t.Fatalf("tuples lost: %v", counts)
	}
	if counts[0] == 1000 {
		t.Fatalf("no tuples moved: %v", counts)
	}
}

func TestSampleLoadsMetrics(t *testing.T) {
	r := newRig(t, 2, 2000, routing.RangePartitioned)
	p := r.aeus[0].Partition(testObj)
	pAccesses(p, 7)
	w := watched{obj: testObj, metric: AccessFrequency}
	loads := r.bal.SampleLoads(w)
	if loads[0] != 7 || loads[1] != 0 {
		t.Fatalf("freq loads = %v", loads)
	}
	// Sampling resets the window.
	if loads := r.bal.SampleLoads(w); loads[0] != 0 {
		t.Fatalf("second sample = %v", loads)
	}
	p.Tree.Upsert(0, 1, 1, 1)
	w.metric = PhysicalSize
	if loads := r.bal.SampleLoads(w); loads[0] != 1 {
		t.Fatalf("size loads = %v", loads)
	}
	w.metric = MeanCommandTime
	if loads := r.bal.SampleLoads(w); loads[0] != 0 {
		t.Fatalf("time loads = %v", loads)
	}
}

// pAccesses bumps a partition's access counter as the AEU's processing
// stage would.
func pAccesses(p *aeu.Partition, n int64) {
	for i := int64(0); i < n; i++ {
		p.RecordAccess()
	}
}
