package balance

import (
	"fmt"

	"eris/internal/command"
	"eris/internal/csbtree"
	"eris/internal/topology"
)

// Plan is one balancing cycle's output: the new routing table and the
// balancing command for every AEU whose responsibility changes.
type Plan struct {
	Epoch uint64
	// Entries is the new range partitioning (nil for size-partitioned
	// objects).
	Entries []csbtree.Entry
	// Commands maps AEU -> its balancing command.
	Commands map[uint32]*command.Balance
	// MovedTuplesEstimate sums the planned fetch volumes (tuples for size
	// plans; key-range width for range plans).
	MovedTuplesEstimate uint64
}

// Involved returns the number of AEUs that receive a command (and whose
// acks complete the cycle).
func (p *Plan) Involved() int { return len(p.Commands) }

// PlanRange diffs the current and target boundaries of a range-partitioned
// object into balancing commands. bounds and newBounds have n+1 entries
// (domain low .. exclusive domain high); AEU i owns range i.
func PlanRange(epoch uint64, bounds, newBounds []uint64) (*Plan, error) {
	n := len(bounds) - 1
	if len(newBounds) != n+1 {
		return nil, fmt.Errorf("balance: bound count mismatch %d vs %d", len(bounds), len(newBounds))
	}
	if bounds[0] != newBounds[0] || bounds[n] != newBounds[n] {
		return nil, fmt.Errorf("balance: outer bounds must not move")
	}
	plan := &Plan{Epoch: epoch, Commands: make(map[uint32]*command.Balance)}
	plan.Entries = make([]csbtree.Entry, n)
	for i := 0; i < n; i++ {
		plan.Entries[i] = csbtree.Entry{Low: newBounds[i], Owner: uint32(i)}
	}

	for i := 0; i < n; i++ {
		oldLo, oldHi := bounds[i], bounds[i+1]
		newLo, newHi := newBounds[i], newBounds[i+1]
		if oldLo == newLo && oldHi == newHi {
			continue
		}
		b := &command.Balance{Epoch: epoch, NewLo: newLo, NewHi: newHi - 1}
		// Fetches: parts of the new range owned by other AEUs before.
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			lo := maxU64(newLo, bounds[j])
			hi := minU64(newHi, bounds[j+1])
			if lo >= hi {
				continue
			}
			b.Fetches = append(b.Fetches, command.Fetch{From: uint32(j), Lo: lo, Hi: hi - 1})
			plan.MovedTuplesEstimate += hi - lo
		}
		plan.Commands[uint32(i)] = b
	}
	return plan, nil
}

// PlanSize balances a size-partitioned object: AEUs above the average
// tuple count hand their surplus to AEUs below it. Matching prefers
// surplus/deficit pairs on the same NUMA node so transfers use the cheap
// link mechanism where possible.
func PlanSize(epoch uint64, counts []int64, nodes []topology.NodeID) (*Plan, error) {
	n := len(counts)
	if len(nodes) != n {
		return nil, fmt.Errorf("balance: %d node tags for %d partitions", len(nodes), n)
	}
	var total int64
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("balance: negative count")
		}
		total += c
	}
	plan := &Plan{Epoch: epoch, Commands: make(map[uint32]*command.Balance)}
	if n == 0 || total == 0 {
		return plan, nil
	}
	avg := total / int64(n)

	type side struct {
		aeu  uint32
		amt  int64
		node topology.NodeID
	}
	var surplus, deficit []side
	for i, c := range counts {
		switch {
		case c > avg:
			surplus = append(surplus, side{uint32(i), c - avg, nodes[i]})
		case c < avg:
			deficit = append(deficit, side{uint32(i), avg - c, nodes[i]})
		}
	}

	take := func(d *side, s *side) {
		m := minI64(d.amt, s.amt)
		if m <= 0 {
			return
		}
		b := plan.Commands[d.aeu]
		if b == nil {
			b = &command.Balance{Epoch: epoch}
			plan.Commands[d.aeu] = b
		}
		b.Fetches = append(b.Fetches, command.Fetch{From: s.aeu, Tuples: m})
		plan.MovedTuplesEstimate += uint64(m)
		d.amt -= m
		s.amt -= m
	}
	// Pass 1: same-node matches (link transfers).
	for di := range deficit {
		for si := range surplus {
			if deficit[di].amt == 0 {
				break
			}
			if surplus[si].node == deficit[di].node {
				take(&deficit[di], &surplus[si])
			}
		}
	}
	// Pass 2: any remaining surplus (copy transfers).
	for di := range deficit {
		for si := range surplus {
			if deficit[di].amt == 0 {
				break
			}
			take(&deficit[di], &surplus[si])
		}
	}
	return plan, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
