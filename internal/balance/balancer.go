package balance

import (
	"fmt"
	"sync"
	"time"

	"eris/internal/aeu"
	"eris/internal/command"
	"eris/internal/faults"
	"eris/internal/metrics"
	"eris/internal/routing"
	"eris/internal/topology"
)

// Metric selects what the monitor samples for an object.
type Metric int

// Monitoring metrics (Section 3.3): physical partition size for objects
// that are always scanned entirely, access frequency for objects facing
// lookups or range scans, and mean command execution time as an additional
// signal for the latter.
const (
	AccessFrequency Metric = iota
	PhysicalSize
	MeanCommandTime
)

// Config tunes the balancer.
type Config struct {
	// SampleIntervalSec is the monitoring window in virtual seconds.
	// Default 1.0.
	SampleIntervalSec float64
	// Threshold is the relative standard deviation that triggers a cycle.
	// Default 0.15.
	Threshold float64
	// PollReal is the real-time polling interval for virtual-clock
	// progress. Default 200 microseconds.
	PollReal time.Duration
	// AckTimeout bounds the real-time wait for AEU acknowledgements.
	// Default 30 s.
	AckTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.SampleIntervalSec == 0 {
		c.SampleIntervalSec = 1.0
	}
	if c.Threshold == 0 {
		c.Threshold = 0.15
	}
	if c.PollReal == 0 {
		c.PollReal = 200 * time.Microsecond
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 30 * time.Second
	}
	return c
}

// watched is one object under balancer control.
type watched struct {
	obj      routing.ObjectID
	kind     routing.TableKind
	metric   Metric
	alg      Algorithm
	domainHi uint64 // exclusive upper bound of the key domain

	// Fail-soft state: after an aborted or timed-out cycle the object is
	// re-evaluated with capped exponential backoff instead of retrying
	// every window (a persistently failing plan must not starve the other
	// watched objects or spin the control plane).
	failStreak   int
	backoffUntil float64 // virtual seconds; skip evaluation before this
}

// Outcome classifies how one balancing cycle ended.
type Outcome int

// Cycle outcomes. A cycle Completed when every involved AEU acknowledged
// its epoch; it was Aborted when planning or the routing-table update
// failed before any command was sent; it TimedOut when the ack wait
// expired (stragglers may still ack later — those are counted stale); it
// was Stopped when the engine shut down mid-wait.
const (
	Completed Outcome = iota
	Aborted
	TimedOut
	Stopped
)

// String names the outcome for reports and logs.
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Aborted:
		return "aborted"
	case TimedOut:
		return "timed_out"
	case Stopped:
		return "stopped"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Cycle records one executed balancing cycle for reporting.
type Cycle struct {
	Epoch      uint64
	Object     routing.ObjectID
	TimeSec    float64 // virtual time at trigger
	Imbalance  float64
	Algorithm  string
	Involved   int
	MovedEst   uint64
	AckedInSec float64 // real seconds until all AEUs acked
	Outcome    Outcome
	Acked      int    // acks received (== Involved when Completed)
	Err        string // planning/update failure for Aborted cycles
}

type ack struct {
	aeu   uint32
	obj   routing.ObjectID
	epoch uint64
}

// backoffCapIntervals caps the exponential retry backoff after failed
// cycles at this many sampling intervals.
const backoffCapIntervals = 16

// Balancer is the NUMA-aware load balancer component of the engine.
type Balancer struct {
	router  *routing.Router
	aeus    []*aeu.AEU
	cfg     Config
	faults  *faults.Injector
	watched []watched

	acks   chan ack
	stopCh chan struct{}
	doneCh chan struct{}
	epoch  uint64

	mu     sync.Mutex
	cycles []Cycle

	// Counters on the engine's metrics registry (balance.*).
	cycleCnt    *metrics.Counter
	movedEst    *metrics.Counter
	involved    *metrics.Counter
	evaluated   *metrics.Counter
	skippedImb  *metrics.Counter
	aborted     *metrics.Counter
	timeouts    *metrics.Counter
	retries     *metrics.Counter
	acksDropped *metrics.Counter
	acksStale   *metrics.Counter
}

// New creates a balancer over the engine's AEUs. The caller must install
// the balancer's Ack as every AEU's epoch-done callback.
func New(router *routing.Router, aeus []*aeu.AEU, cfg Config) *Balancer {
	reg := router.Metrics()
	return &Balancer{
		router:      router,
		aeus:        aeus,
		cfg:         cfg.withDefaults(),
		faults:      router.Faults(),
		acks:        make(chan ack, 8*len(aeus)+16),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
		cycleCnt:    reg.Counter("balance.cycles"),
		movedEst:    reg.Counter("balance.moved_tuples_est"),
		involved:    reg.Counter("balance.involved_aeus"),
		evaluated:   reg.Counter("balance.evaluations"),
		skippedImb:  reg.Counter("balance.below_threshold"),
		aborted:     reg.Counter("balance.aborted"),
		timeouts:    reg.Counter("balance.timeouts"),
		retries:     reg.Counter("balance.retries"),
		acksDropped: reg.Counter("balance.acks_dropped"),
		acksStale:   reg.Counter("balance.acks_stale"),
	}
}

// Ack is the AEU epoch-done callback. Every lost ack — injected, or a full
// channel under pathological load — is counted: the cycle's wait then times
// out and the next sampling window re-evaluates, so loss degrades progress
// but never correctness.
func (b *Balancer) Ack(aeuID uint32, obj routing.ObjectID, epoch uint64) {
	if b.faults.Should(faults.DropAck) {
		b.acksDropped.Inc()
		return
	}
	select {
	case b.acks <- ack{aeu: aeuID, obj: obj, epoch: epoch}:
	default:
		b.acksDropped.Inc()
	}
}

// Watch puts an object under balancer control. domainHi is the exclusive
// upper bound of the object's key domain (ignored for size-partitioned
// objects). alg nil defaults to One-Shot.
func (b *Balancer) Watch(obj routing.ObjectID, domainHi uint64, metric Metric, alg Algorithm) {
	if alg == nil {
		alg = OneShot{}
	}
	b.watched = append(b.watched, watched{
		obj:      obj,
		kind:     b.router.Kind(obj),
		metric:   metric,
		alg:      alg,
		domainHi: domainHi,
	})
}

// Cycles returns the executed balancing cycles.
func (b *Balancer) Cycles() []Cycle {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Cycle(nil), b.cycles...)
}

// SampleLoads reads and resets the monitoring window of every AEU's
// partition of obj, returning the configured metric per AEU.
func (b *Balancer) SampleLoads(w watched) []float64 {
	loads := make([]float64, len(b.aeus))
	for i, a := range b.aeus {
		p := a.Partition(w.obj)
		if p == nil {
			continue
		}
		acc, meanPS := p.TakeSample()
		switch w.metric {
		case AccessFrequency:
			loads[i] = float64(acc)
		case PhysicalSize:
			loads[i] = float64(p.SizeTuples())
		case MeanCommandTime:
			loads[i] = meanPS
		}
	}
	return loads
}

// Run executes the monitoring/balancing loop until Stop; it is the
// balancer goroutine's body.
func (b *Balancer) Run() {
	defer close(b.doneCh)
	machine := b.router.Machine()
	last := topology.CoreID(b.router.NumAEUs())
	clockSec := func() float64 { return float64(machine.MinClock(0, last)) / 1e12 }
	next := clockSec() + b.cfg.SampleIntervalSec
	for {
		select {
		case <-b.stopCh:
			return
		case <-time.After(b.cfg.PollReal):
		}
		now := clockSec()
		if now < next {
			continue
		}
		for i := range b.watched {
			b.evaluate(&b.watched[i], now)
		}
		// Advance from the scheduled time, not from the clock after the
		// evaluation: a slow cycle must not push every later window out
		// (drift), it just swallows the windows it overran.
		for next <= clockSec() {
			next += b.cfg.SampleIntervalSec
		}
	}
}

// Stop terminates the Run loop and waits for it to exit.
func (b *Balancer) Stop() {
	close(b.stopCh)
	<-b.doneCh
}

// evaluate samples one object and runs a balancing cycle when the
// imbalance exceeds the threshold. A cycle that cannot be planned or
// published is aborted — counted, recorded, backed off — never fatal: the
// state it leaves behind is exactly the state before the cycle, and the
// next window re-evaluates the same imbalance.
func (b *Balancer) evaluate(w *watched, nowSec float64) {
	if nowSec < w.backoffUntil {
		return
	}
	b.evaluated.Inc()
	if w.failStreak > 0 {
		b.retries.Inc()
	}
	loads := b.SampleLoads(*w)
	imb := Imbalance(loads)
	if imb <= b.cfg.Threshold {
		b.skippedImb.Inc()
		w.failStreak, w.backoffUntil = 0, 0
		return
	}
	var (
		plan *Plan
		err  error
	)
	b.epoch++
	if w.kind == routing.RangePartitioned {
		plan, err = b.planRangeCycle(w, loads)
	} else {
		plan, err = b.planSizeCycle(w)
	}
	if err != nil {
		b.abort(w, nowSec, imb, fmt.Errorf("planning object %d: %w", w.obj, err))
		return
	}
	if plan == nil || plan.Involved() == 0 {
		return
	}
	if plan.Entries != nil {
		if err := b.router.UpdateRange(w.obj, plan.Entries); err != nil {
			b.abort(w, nowSec, imb, fmt.Errorf("updating routing table for object %d: %w", w.obj, err))
			return
		}
	}
	for aeuID, bal := range plan.Commands {
		b.router.Inject(aeuID, &command.Command{
			Op: command.OpBalance, Object: uint32(w.obj),
			Source: aeuID, ReplyTo: command.NoReply,
			Balance: bal,
		})
	}
	start := time.Now()
	outcome, acked := b.waitAcks(plan.Epoch, plan.Involved())
	b.cycleCnt.Inc()
	b.movedEst.Add(int64(plan.MovedTuplesEstimate))
	b.involved.Add(int64(plan.Involved()))
	switch outcome {
	case Completed:
		w.failStreak, w.backoffUntil = 0, 0
	case TimedOut:
		b.timeouts.Inc()
		b.backoff(w, nowSec)
	}
	b.mu.Lock()
	b.cycles = append(b.cycles, Cycle{
		Epoch: plan.Epoch, Object: w.obj, TimeSec: nowSec,
		Imbalance: imb, Algorithm: w.alg.Name(),
		Involved: plan.Involved(), MovedEst: plan.MovedTuplesEstimate,
		AckedInSec: time.Since(start).Seconds(),
		Outcome:    outcome, Acked: acked,
	})
	b.mu.Unlock()
}

// abort records a cycle that failed before any command was sent.
func (b *Balancer) abort(w *watched, nowSec, imb float64, err error) {
	b.aborted.Inc()
	b.backoff(w, nowSec)
	b.mu.Lock()
	b.cycles = append(b.cycles, Cycle{
		Epoch: b.epoch, Object: w.obj, TimeSec: nowSec,
		Imbalance: imb, Algorithm: w.alg.Name(),
		Outcome: Aborted, Err: err.Error(),
	})
	b.mu.Unlock()
}

// backoff pushes the object's next evaluation out exponentially with its
// failure streak, capped at backoffCapIntervals sampling windows.
func (b *Balancer) backoff(w *watched, nowSec float64) {
	w.failStreak++
	wait := 1 << (w.failStreak - 1)
	if w.failStreak > 4 || wait > backoffCapIntervals {
		wait = backoffCapIntervals
	}
	w.backoffUntil = nowSec + float64(wait)*b.cfg.SampleIntervalSec
}

func (b *Balancer) planRangeCycle(w *watched, loads []float64) (*Plan, error) {
	entries := b.router.OwnerEntries(w.obj)
	if len(entries) != len(b.aeus) {
		return nil, fmt.Errorf("object %d has %d ranges for %d AEUs", w.obj, len(entries), len(b.aeus))
	}
	bounds := make([]uint64, len(entries)+1)
	for i, e := range entries {
		if e.Owner != uint32(i) {
			return nil, fmt.Errorf("object %d: range %d owned by AEU %d, ordered ownership required", w.obj, i, e.Owner)
		}
		bounds[i] = e.Low
	}
	bounds[len(entries)] = w.domainHi
	targets := w.alg.Targets(loads)
	newBounds, err := Rebound(bounds, loads, targets)
	if err != nil {
		return nil, err
	}
	return PlanRange(b.epoch, bounds, newBounds)
}

func (b *Balancer) planSizeCycle(w *watched) (*Plan, error) {
	counts := make([]int64, len(b.aeus))
	nodes := make([]topology.NodeID, len(b.aeus))
	for i, a := range b.aeus {
		nodes[i] = a.Node
		if p := a.Partition(w.obj); p != nil {
			counts[i] = p.SizeTuples()
		}
	}
	return PlanSize(b.epoch, counts, nodes)
}

// waitAcks blocks until `expect` acknowledgements for epoch arrive, the
// timeout fires, or the balancer is stopped. Acknowledgements for other
// epochs are stragglers from a timed-out cycle; they are counted stale and
// discarded so they can never satisfy — or corrupt — the current wait.
func (b *Balancer) waitAcks(epoch uint64, expect int) (Outcome, int) {
	deadline := time.After(b.cfg.AckTimeout)
	got := 0
	for got < expect {
		select {
		case a := <-b.acks:
			if a.epoch == epoch {
				got++
			} else {
				b.acksStale.Inc()
			}
		case <-deadline:
			return TimedOut, got
		case <-b.stopCh:
			return Stopped, got
		}
	}
	return Completed, got
}

// Report summarizes the balancer's fail-soft accounting.
type Report struct {
	Evaluations int64
	Cycles      int64 // cycles that published commands (any outcome)
	Completed   int64
	Aborted     int64 // failed before publishing (plan / table update)
	TimedOut    int64
	Stopped     int64
	Retries     int64 // evaluations re-attempted after a failed cycle
	AcksDropped int64
	AcksStale   int64
	LastError   string // most recent abort reason, "" if none
}

// Report aggregates the executed cycles and failure counters.
func (b *Balancer) Report() Report {
	r := Report{
		Evaluations: b.evaluated.Load(),
		Cycles:      b.cycleCnt.Load(),
		Aborted:     b.aborted.Load(),
		TimedOut:    b.timeouts.Load(),
		Retries:     b.retries.Load(),
		AcksDropped: b.acksDropped.Load(),
		AcksStale:   b.acksStale.Load(),
	}
	b.mu.Lock()
	for _, c := range b.cycles {
		switch c.Outcome {
		case Completed:
			r.Completed++
		case Stopped:
			r.Stopped++
		case Aborted:
			r.LastError = c.Err
		}
	}
	b.mu.Unlock()
	return r
}
