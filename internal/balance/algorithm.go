// Package balance implements ERIS's NUMA-aware load balancer (Section 3.3):
// a monitor that samples per-partition metrics (access frequency for
// range-partitioned objects, physical size for scan-only objects), an
// imbalance detector triggering on the relative standard deviation across
// AEUs, the configurable balancing algorithm family of Figure 6 (One-Shot
// and Moving-Average with a tunable window), and a planner that turns the
// target partitioning into per-AEU balancing commands with fetch
// instructions (Figure 7); the AEUs themselves pick link or copy transfer
// by node locality.
package balance

import (
	"fmt"
	"math"
)

// Algorithm computes per-partition target loads from measured loads; the
// planner then moves partition boundaries so each partition's expected load
// matches its target. Implementations must preserve the total load.
type Algorithm interface {
	// Targets returns the target load for each partition. len(out) ==
	// len(loads) and sum(out) == sum(loads) (up to rounding).
	Targets(loads []float64) []float64
	// Name labels the configuration in reports ("One-Shot", "MA1", ...).
	Name() string
}

// OneShot fully equalizes the load in a single cycle: the most aggressive
// and most expensive configuration, suited to workloads that change rarely
// but heavily.
type OneShot struct{}

// Targets implements Algorithm.
func (OneShot) Targets(loads []float64) []float64 {
	out := make([]float64, len(loads))
	var sum float64
	for _, l := range loads {
		sum += l
	}
	avg := sum / float64(len(loads))
	for i := range out {
		out[i] = avg
	}
	return out
}

// Name implements Algorithm.
func (OneShot) Name() string { return "One-Shot" }

// MovingAverage smooths each partition's load with its w neighbors on each
// side; it adapts more slowly than One-Shot but moves far less data per
// cycle, suiting highly dynamic workloads. MA with w >= len(loads)-1
// degenerates to One-Shot, as the paper notes for MA7 on 8 partitions.
type MovingAverage struct {
	Window int
}

// Targets implements Algorithm.
func (m MovingAverage) Targets(loads []float64) []float64 {
	n := len(loads)
	out := make([]float64, n)
	w := m.Window
	if w < 1 {
		w = 1
	}
	var total float64
	for i := 0; i < n; i++ {
		lo, hi := i-w, i+w
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += loads[j]
		}
		out[i] = sum / float64(hi-lo+1)
		total += out[i]
	}
	// Clipping at the edges biases the sum; rescale to preserve total load
	// so the boundary equalization stays well-defined.
	var orig float64
	for _, l := range loads {
		orig += l
	}
	if total > 0 {
		scale := orig / total
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// Name implements Algorithm.
func (m MovingAverage) Name() string { return fmt.Sprintf("MA%d", m.Window) }

// Imbalance returns the relative standard deviation (stddev/mean) of the
// loads; the balancer triggers when it exceeds the configured threshold.
// A zero mean reports zero imbalance.
func Imbalance(loads []float64) float64 {
	n := float64(len(loads))
	if n == 0 {
		return 0
	}
	var sum float64
	for _, l := range loads {
		sum += l
	}
	mean := sum / n
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, l := range loads {
		d := l - mean
		ss += d * d
	}
	return math.Sqrt(ss/n) / mean
}

// Rebound computes new partition boundaries so that, assuming load is
// uniformly distributed inside each current partition, partition i's new
// range carries targets[i] load. bounds has len(loads)+1 entries: bounds[0]
// is the domain low, bounds[len] the exclusive domain high. The returned
// boundaries are strictly increasing and preserve the outer bounds.
func Rebound(bounds []uint64, loads, targets []float64) ([]uint64, error) {
	n := len(loads)
	if len(bounds) != n+1 {
		return nil, fmt.Errorf("balance: %d bounds for %d partitions", len(bounds), n)
	}
	if len(targets) != n {
		return nil, fmt.Errorf("balance: %d targets for %d partitions", len(targets), n)
	}
	var total float64
	for _, l := range loads {
		if l < 0 {
			return nil, fmt.Errorf("balance: negative load %f", l)
		}
		total += l
	}
	out := make([]uint64, n+1)
	out[0], out[n] = bounds[0], bounds[n]
	if total == 0 {
		copy(out, bounds)
		return out, nil
	}

	// Walk the cumulative load along the key axis; place boundary i where
	// the cumulative load reaches sum(targets[:i]).
	cum := 0.0   // load mass of fully consumed partitions [0, seg)
	seg := 0     // current source partition
	inSeg := 0.0 // load consumed inside partition seg
	want := 0.0  // cumulative target
	for i := 1; i < n; i++ {
		want += targets[i-1]
		// Advance segments until the want mass falls inside seg.
		for seg < n-1 && cum+loads[seg] < want-1e-9 {
			cum += loads[seg]
			inSeg = 0
			seg++
		}
		need := want - cum - inSeg
		segWidth := float64(bounds[seg+1] - bounds[seg])
		var frac float64
		if loads[seg] > 0 {
			frac = (inSeg + need) / loads[seg]
		}
		if frac > 1 {
			frac = 1
		}
		pos := float64(bounds[seg]) + frac*segWidth
		b := uint64(pos)
		// Enforce strict monotonicity and stay inside the domain.
		if b <= out[i-1] {
			b = out[i-1] + 1
		}
		maxB := out[n] - uint64(n-i)
		if b > maxB {
			b = maxB
		}
		out[i] = b
		inSeg += need
	}
	return out, nil
}
