package routing

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/csbtree"
	"eris/internal/faults"
	"eris/internal/mem"
	"eris/internal/metrics"
	"eris/internal/prefixtree"
	"eris/internal/topology"
)

// Frame kinds inside routed buffers.
const (
	kindCmd byte = 1 // inline encoded command follows
	kindRef byte = 2 // multicast reference: src AEU (4), slot (4), size (4)
)

const refRecordBytes = 1 + 4 + 4 + 4

// fullBufferPollNS is the virtual cost of one poll on a full remote
// incoming buffer; producers pay it per wait spin, modeling backpressure.
const fullBufferPollNS = 100.0

// mcastEntry is one slot of an AEU's multicast table: the command encoded
// once, pulled by every referenced target.
type mcastEntry struct {
	data []byte
	refs atomic.Int32
}

// Outbox is the private per-AEU routing state: one unicast buffer and one
// multicast reference buffer per peer AEU, plus the multicast table. All
// buffers live in the owning AEU's local memory and need no concurrency
// control (step 2 of Figure 4); only flushing touches remote memory.
type Outbox struct {
	r    *Router
	self uint32
	node topology.NodeID

	uni     [][]byte // per target; lazily allocated
	refs    [][]byte // per target multicast reference buffers
	touched []uint32 // targets queued for the next Flush, in first-touch order
	queued  []bool   // target is in touched (cleared only by Flush)
	dirty   []bool   // target has unflushed data

	mcast     []mcastEntry
	mcastNext int
	mcastAddr mem.Block

	// groupKeys/groupKVs are per-target scratch for splitting batches;
	// targets/owners/sortKeys/sortKVs/entScratch/holderScratch are the
	// remaining route-split scratch, all reused across calls (the outbox
	// is single-goroutine by construction).
	groupKeys     [][]uint64
	groupKVs      [][]prefixtree.KV
	targets       []uint32
	owners        []uint32
	sortKeys      []uint64
	sortKVs       []prefixtree.KV
	entScratch    []csbtree.Entry
	holderScratch []uint32

	// maxLookupKeys/maxUpsertKVs cap how many keys/KVs one routed command
	// may carry so its framed encoding never exceeds OutBufBytes (chunked
	// at route time instead of hitting the inbox oversized-divert path).
	maxLookupKeys int
	maxUpsertKVs  int

	// Counters, registered on the engine's metrics registry under
	// routing.outbox.<aeu>.*. Only the owning AEU writes them.
	routedCmds  *metrics.Counter
	routedKeys  *metrics.Counter
	flushes     *metrics.Counter
	flushedByte *metrics.Counter
	mcasts      *metrics.Counter
}

func newOutbox(r *Router, self uint32, node topology.NodeID) *Outbox {
	n := r.numAEUs
	prefix := fmt.Sprintf("routing.outbox.%d.", self)
	return &Outbox{
		r:             r,
		self:          self,
		node:          node,
		uni:           make([][]byte, n),
		refs:          make([][]byte, n),
		queued:        make([]bool, n),
		dirty:         make([]bool, n),
		mcast:         make([]mcastEntry, r.cfg.MulticastSlots),
		mcastAddr:     r.mems.Node(node).Alloc(int64(r.cfg.MulticastSlots) * 64),
		groupKeys:     make([][]uint64, n),
		groupKVs:      make([][]prefixtree.KV, n),
		maxLookupKeys: command.MaxLookupKeys(r.cfg.OutBufBytes),
		maxUpsertKVs:  command.MaxUpsertKVs(r.cfg.OutBufBytes),
		routedCmds:    r.metrics.Counter(prefix + "routed_cmds"),
		routedKeys:    r.metrics.Counter(prefix + "routed_keys"),
		flushes:       r.metrics.Counter(prefix + "flushes"),
		flushedByte:   r.metrics.Counter(prefix + "flushed_bytes"),
		mcasts:        r.metrics.Counter(prefix + "multicasts"),
	}
}

// core returns the core this outbox's AEU is pinned to.
//
//eris:hotpath
func (o *Outbox) core() topology.CoreID { return topology.CoreID(o.self) }

// markTouched records that target has pending data. The touched list is
// gated on queued, not dirty: FlushTarget clears dirty but leaves the
// target queued, so re-touching a target flushed mid-iteration cannot
// append a duplicate (only Flush dequeues).
//
//eris:hotpath
func (o *Outbox) markTouched(to uint32) {
	o.dirty[to] = true
	if !o.queued[to] {
		o.queued[to] = true
		o.touched = append(o.touched, to)
	}
}

// appendCmd encodes cmd into the unicast buffer of target, flushing first
// if the buffer would overflow. Appends are local memory writes.
//
//eris:hotpath
func (o *Outbox) appendCmd(to uint32, cmd *command.Command) {
	need := 1 + cmd.EncodedSize()
	if buf := o.uni[to]; len(buf)+need > o.r.cfg.OutBufBytes && len(buf) > 0 {
		o.FlushTarget(to)
	}
	if o.uni[to] == nil {
		o.uni[to] = make([]byte, 0, o.r.cfg.OutBufBytes) //eris:allowalloc per-target buffer allocated once at first use, then reused across flushes
	}
	o.uni[to] = append(o.uni[to], kindCmd)
	o.uni[to] = cmd.AppendEncode(o.uni[to])
	o.markTouched(to)
	o.routedCmds.Inc()
	// Local buffer write: charged as a local stream so that routing's local
	// traffic shows up in the memory-controller counters.
	o.r.machine.Stream(o.core(), o.node, int64(need))
}

// Send routes a fully formed command to one explicit target AEU.
//
//eris:hotpath
func (o *Outbox) Send(to uint32, cmd *command.Command) {
	cmd.Source = o.self
	o.appendCmd(to, cmd)
}

// sortedRouteMinKeys is the batch size from which the route-split sorts
// the batch and resolves owners with one partition-table walk plus a
// linear merge; below it, per-key descents are cheaper than the sort.
const sortedRouteMinKeys = 16

// RouteLookup splits a key batch by owner and routes per-owner lookup
// commands, chunked so no encoded command exceeds the outgoing buffer
// capacity. It returns the number of commands emitted. Large batches are
// sorted first and resolved against the partition table in one ordered
// merge; the virtual cost charged is RouteNSPerKey per key either way, so
// simulated results do not depend on the resolution strategy.
//
//eris:hotpath
func (o *Outbox) RouteLookup(obj ObjectID, keys []uint64, replyTo int32, tag uint64) int {
	return o.routeKeyBatch(command.OpLookup, obj, keys, replyTo, tag, 0)
}

// RouteLookupDeadline is RouteLookup with a request deadline (absolute
// unix nanoseconds, 0 = none) stamped on the routed commands, so a
// forwarded batch keeps its issuer's time budget.
//
//eris:hotpath
func (o *Outbox) RouteLookupDeadline(obj ObjectID, keys []uint64, replyTo int32, tag, deadline uint64) int {
	return o.routeKeyBatch(command.OpLookup, obj, keys, replyTo, tag, deadline)
}

// RouteDelete splits a key batch by owner and routes per-owner delete
// commands, chunked like RouteLookup.
//
//eris:hotpath
func (o *Outbox) RouteDelete(obj ObjectID, keys []uint64, replyTo int32, tag uint64) int {
	return o.routeKeyBatch(command.OpDelete, obj, keys, replyTo, tag, 0)
}

// RouteDeleteDeadline is RouteDelete with a request deadline; see
// RouteLookupDeadline.
//
//eris:hotpath
func (o *Outbox) RouteDeleteDeadline(obj ObjectID, keys []uint64, replyTo int32, tag, deadline uint64) int {
	return o.routeKeyBatch(command.OpDelete, obj, keys, replyTo, tag, deadline)
}

// routeKeyBatch is the shared owner-split/chunk body of the key-batch
// routed operations (lookup, delete).
//
//eris:hotpath
func (o *Outbox) routeKeyBatch(op command.Op, obj ObjectID, keys []uint64, replyTo int32, tag, deadline uint64) int {
	table := o.r.object(obj).ranged
	m := o.r.machine
	m.AdvanceNS(o.core(), o.r.cfg.RouteNSPerKey*float64(len(keys)))
	o.routedKeys.Add(int64(len(keys)))
	if len(keys) == 0 {
		return 0
	}

	routed := keys
	if len(keys) >= sortedRouteMinKeys {
		o.sortKeys = append(o.sortKeys[:0], keys...)
		slices.Sort(o.sortKeys)
		routed = o.sortKeys
	}
	owners := o.resolveOwners(table, routed)

	o.targets = o.targets[:0]
	for i, k := range routed {
		to := owners[i]
		if len(o.groupKeys[to]) == 0 {
			o.targets = append(o.targets, to)
		}
		o.groupKeys[to] = append(o.groupKeys[to], k)
	}
	emitted := 0
	for _, to := range o.targets {
		batch := o.groupKeys[to]
		for len(batch) > 0 {
			n := min(len(batch), o.maxLookupKeys)
			cmd := command.Command{
				Op: op, Object: uint32(obj), Source: o.self,
				ReplyTo: replyTo, Tag: tag, Keys: batch[:n], Deadline: deadline,
			}
			o.appendCmd(to, &cmd)
			emitted++
			batch = batch[n:]
		}
		o.groupKeys[to] = o.groupKeys[to][:0]
	}
	return emitted
}

// RouteUpsert splits a KV batch by owner and routes per-owner upserts,
// chunked like RouteLookup. The sort used for batch owner resolution is
// stable, so duplicate keys keep their last-write-wins order.
//
//eris:hotpath
func (o *Outbox) RouteUpsert(obj ObjectID, kvs []prefixtree.KV, replyTo int32, tag uint64) int {
	return o.RouteUpsertDeadline(obj, kvs, replyTo, tag, 0)
}

// RouteUpsertDeadline is RouteUpsert with a request deadline; see
// RouteLookupDeadline.
//
//eris:hotpath
func (o *Outbox) RouteUpsertDeadline(obj ObjectID, kvs []prefixtree.KV, replyTo int32, tag, deadline uint64) int {
	table := o.r.object(obj).ranged
	m := o.r.machine
	m.AdvanceNS(o.core(), o.r.cfg.RouteNSPerKey*float64(len(kvs)))
	o.routedKeys.Add(int64(len(kvs)))
	if len(kvs) == 0 {
		return 0
	}

	routed := kvs
	if len(kvs) >= sortedRouteMinKeys {
		o.sortKVs = append(o.sortKVs[:0], kvs...)
		slices.SortStableFunc(o.sortKVs, func(a, b prefixtree.KV) int { //eris:allowalloc non-escaping comparator for the sorted-route fast path
			return cmp.Compare(a.Key, b.Key)
		})
		routed = o.sortKVs
		o.sortKeys = o.sortKeys[:0]
		for _, kv := range routed {
			o.sortKeys = append(o.sortKeys, kv.Key)
		}
		if cap(o.owners) < len(routed) {
			o.owners = make([]uint32, len(routed)) //eris:allowalloc amortized owner-scratch growth, reused across batches
		}
		table.OwnersSorted(o.sortKeys, o.owners[:len(routed)])
	} else {
		if cap(o.owners) < len(routed) {
			o.owners = make([]uint32, len(routed)) //eris:allowalloc amortized owner-scratch growth, reused across batches
		}
		for i, kv := range routed {
			o.owners[i] = table.Owner(kv.Key)
		}
	}

	o.targets = o.targets[:0]
	for i, kv := range routed {
		to := o.owners[i]
		if len(o.groupKVs[to]) == 0 {
			o.targets = append(o.targets, to)
		}
		o.groupKVs[to] = append(o.groupKVs[to], kv)
	}
	emitted := 0
	for _, to := range o.targets {
		batch := o.groupKVs[to]
		for len(batch) > 0 {
			n := min(len(batch), o.maxUpsertKVs)
			cmd := command.Command{
				Op: command.OpUpsert, Object: uint32(obj), Source: o.self,
				ReplyTo: replyTo, Tag: tag, KVs: batch[:n], Deadline: deadline,
			}
			o.appendCmd(to, &cmd)
			emitted++
			batch = batch[n:]
		}
		o.groupKVs[to] = o.groupKVs[to][:0]
	}
	return emitted
}

// resolveOwners fills the owner scratch for routed keys, choosing between
// per-key descents and the sorted one-pass merge. routed must be sorted
// ascending when its length is at least sortedRouteMinKeys.
//
//eris:hotpath
func (o *Outbox) resolveOwners(table *RangeTable, routed []uint64) []uint32 {
	if cap(o.owners) < len(routed) {
		o.owners = make([]uint32, len(routed)) //eris:allowalloc amortized owner-scratch growth, reused across batches
	}
	owners := o.owners[:len(routed)]
	if len(routed) >= sortedRouteMinKeys {
		table.OwnersSorted(routed, owners)
	} else {
		for i, k := range routed {
			owners[i] = table.Owner(k)
		}
	}
	return owners
}

// RouteScan multicasts a full scan of a size-partitioned object to every
// holder. The multicast carries the predicate's inclusive value bounds as
// Keys = [lo, hi] ([1, 0] when the predicate matches nothing), so each
// receiving AEU prunes its blocks with its zone maps independently. It
// returns the number of targets.
func (o *Outbox) RouteScan(obj ObjectID, pred colstore.Predicate, replyTo int32, tag uint64) int {
	o.holderScratch = o.r.object(obj).bitmap.Holders(o.holderScratch[:0])
	vlo, vhi, ok := pred.Bounds()
	if !ok {
		vlo, vhi = 1, 0
	}
	o.sortKeys = append(o.sortKeys[:0], vlo, vhi)
	cmd := command.Command{
		Op: command.OpScan, Object: uint32(obj), Source: o.self,
		ReplyTo: replyTo, Tag: tag, Pred: pred, Keys: o.sortKeys,
	}
	o.multicast(&cmd, o.holderScratch)
	return len(o.holderScratch)
}

// RouteRangeScan multicasts an index range scan over [lo, hi] to the owning
// AEUs of a range-partitioned object.
func (o *Outbox) RouteRangeScan(obj ObjectID, lo, hi uint64, pred colstore.Predicate, replyTo int32, tag uint64) int {
	o.entScratch = o.r.object(obj).ranged.Owners(o.entScratch[:0], lo, hi)
	o.targets = o.targets[:0]
	for _, e := range o.entScratch {
		o.targets = append(o.targets, e.Owner)
	}
	o.sortKeys = append(o.sortKeys[:0], lo, hi)
	cmd := command.Command{
		Op: command.OpScan, Object: uint32(obj), Source: o.self,
		ReplyTo: replyTo, Tag: tag, Pred: pred, Keys: o.sortKeys,
	}
	o.multicast(&cmd, o.targets)
	return len(o.targets)
}

// multicast stores the command once in the multicast table and appends a
// reference record to each target's reference buffer (step 2, multicast
// path, of Figure 4).
//
//eris:hotpath
func (o *Outbox) multicast(cmd *command.Command, targets []uint32) {
	if len(targets) == 0 {
		return
	}
	m := o.r.machine
	m.AdvanceNS(o.core(), o.r.cfg.RouteNSPerKey*float64(len(targets)))
	slot := o.allocMcastSlot()
	e := &o.mcast[slot]
	e.data = cmd.AppendEncode(e.data[:0])
	e.refs.Store(int32(len(targets)))
	o.mcasts.Inc()
	o.routedCmds.Inc()
	m.Stream(o.core(), o.node, int64(len(e.data)))

	var rec [refRecordBytes]byte
	rec[0] = kindRef
	binary.LittleEndian.PutUint32(rec[1:], o.self)
	binary.LittleEndian.PutUint32(rec[5:], uint32(slot))
	binary.LittleEndian.PutUint32(rec[9:], uint32(len(e.data)))
	for _, to := range targets {
		if len(o.refs[to])+refRecordBytes > o.r.cfg.OutBufBytes && len(o.refs[to]) > 0 {
			o.FlushTarget(to)
		}
		o.refs[to] = append(o.refs[to], rec[:]...)
		o.markTouched(to)
		m.Stream(o.core(), o.node, refRecordBytes)
	}
}

// allocMcastSlot finds a slot whose previous references are all consumed.
//
//eris:hotpath
func (o *Outbox) allocMcastSlot() int {
	for spins := 0; ; spins++ {
		for i := 0; i < len(o.mcast); i++ {
			slot := (o.mcastNext + i) % len(o.mcast)
			if o.mcast[slot].refs.Load() == 0 {
				o.mcastNext = (slot + 1) % len(o.mcast)
				return slot
			}
		}
		// All slots pending: targets have not drained yet. Flush what we
		// have so they can make progress and yield.
		o.Flush()
		runtime.Gosched()
	}
}

// FlushTarget copies the pending buffers for one target into its inbox,
// paying one remote round trip plus the transfer (step 3 of Figure 4).
//
//eris:hotpath
func (o *Outbox) FlushTarget(to uint32) {
	uni, refs := o.uni[to], o.refs[to]
	total := len(uni) + len(refs)
	if total == 0 {
		return
	}
	m := o.r.machine
	targetNode := o.r.nodeOfAEU(to)
	// One descriptor CAS round trip per flush (overlapped across targets
	// up to the configured depth), then the batched copy.
	m.AdvanceNS(o.core(), m.RemoteLatencyNS(o.core(), targetNode)/float64(o.r.cfg.FlushOverlap))
	m.Stream(o.core(), targetNode, int64(total))

	inbox := o.r.inboxes[to]
	if len(uni) > 0 {
		_, waits := inbox.Append(uni)
		m.AdvanceNS(o.core(), fullBufferPollNS*float64(waits))
		o.uni[to] = uni[:0]
	}
	if len(refs) > 0 {
		_, waits := inbox.Append(refs)
		m.AdvanceNS(o.core(), fullBufferPollNS*float64(waits))
		o.refs[to] = refs[:0]
	}
	o.flushes.Inc()
	o.flushedByte.Add(int64(total))
	o.dirty[to] = false
}

// Flush sends every pending buffer (the AEU calls this when its loop starts
// over) and dequeues every touched target.
//
//eris:hotpath
func (o *Outbox) Flush() {
	if len(o.touched) == 0 {
		return
	}
	for _, to := range o.touched {
		if o.dirty[to] {
			o.FlushTarget(to)
		}
		o.queued[to] = false
	}
	o.touched = o.touched[:0]
}

// OutboxStats is a snapshot of per-AEU routing counters.
type OutboxStats struct {
	RoutedCommands int64
	RoutedKeys     int64
	Multicasts     int64
	Flushes        int64
	FlushedBytes   int64
}

// Stats returns a snapshot of the outbox counters. The same values are
// available through the engine's metrics registry as routing.outbox.<aeu>.*.
func (o *Outbox) Stats() OutboxStats {
	return OutboxStats{
		RoutedCommands: o.routedCmds.Load(),
		RoutedKeys:     o.routedKeys.Load(),
		Multicasts:     o.mcasts.Load(),
		Flushes:        o.flushes.Load(),
		FlushedBytes:   o.flushedByte.Load(),
	}
}

// Inject frames and appends a command directly to an AEU's inbox, bypassing
// the outbox pre-buffering. The engine's client API and the load balancer
// use it: both are control-plane paths without a core of their own, so no
// virtual time is charged. The inbox protocol makes this safe from any
// goroutine.
func (r *Router) Inject(aeu uint32, cmd *command.Command) {
	buf := make([]byte, 0, 1+cmd.EncodedSize())
	buf = append(buf, kindCmd)
	buf = cmd.AppendEncode(buf)
	r.inboxes[aeu].Append(buf)
}

// Drain swaps the AEU's inbox and decodes every routed command, resolving
// multicast references by pulling the command from the source AEU's
// multicast table (charged as a remote read). fn is called for each
// command. It returns the number of commands delivered.
//
// Corruption is fail-soft: a frame that does not decode, or an unknown
// frame kind, ends the drain of this payload — frame boundaries live
// inside the payload, so nothing past the corruption can be trusted — and
// the dropped remainder is counted (routing.drain.*). A multicast
// reference whose record is intact but whose entry does not decode is
// skipped record-by-record, releasing the reference so the source can
// recycle the slot.
//
// Commands are decoded zero-copy: Keys and KVs may alias the drained inbox
// buffer (or the AEU's decoder scratch), so they are valid only until fn
// returns — more precisely, until the next command is decoded or the next
// Drain swaps the inbox. Callers that retain a command past fn must
// Clone it (see command.Decoder).
//
//eris:hotpath
func (r *Router) Drain(aeu uint32, fn func(command.Command)) int {
	in := r.inboxes[aeu]
	core := topology.CoreID(aeu)
	node := r.nodeOfAEU(aeu)
	payload := in.Swap()
	if len(payload) == 0 {
		return 0
	}
	m := r.machine
	// The owner reads its processing buffer sequentially from local memory.
	m.Stream(core, node, int64(len(payload)))

	if len(payload) > 1 && r.faults.Should(faults.CorruptFrame) {
		// Injected corruption: clobber the first byte after the frame kind
		// (the command op, or a multicast source id), so the regular
		// corruption handling below runs against a genuinely broken stream.
		payload[0+1] ^= 0xA5
	}

	dec := &r.drainDecs[aeu]
	n := 0
	for off := 0; off < len(payload); {
		switch payload[off] {
		case kindCmd:
			var cmd command.Command
			used, err := dec.DecodeInto(&cmd, payload[off+1:])
			if err != nil {
				r.corruptFrames.Inc()
				r.droppedBytes.Add(int64(len(payload) - off))
				return n
			}
			m.AdvanceNS(core, r.cfg.DecodeNSPerCommand)
			fn(cmd)
			off += 1 + used
			n++
		case kindRef:
			if off+refRecordBytes > len(payload) {
				r.corruptFrames.Inc()
				r.droppedBytes.Add(int64(len(payload) - off))
				return n
			}
			src := binary.LittleEndian.Uint32(payload[off+1:])
			slot := binary.LittleEndian.Uint32(payload[off+5:])
			size := binary.LittleEndian.Uint32(payload[off+9:])
			if int(src) >= len(r.outboxes) || int(slot) >= len(r.outboxes[src].mcast) {
				// Reference into nowhere: the record itself is corrupt. Its
				// length is fixed, so the stream resynchronizes at the next
				// record; there is no entry reference to release.
				r.corruptFrames.Inc()
				r.droppedBytes.Add(refRecordBytes)
				off += refRecordBytes
				continue
			}
			srcBox := r.outboxes[src]
			e := &srcBox.mcast[slot]
			// Pull the command body from the source AEU's local memory.
			m.Read(core, srcBox.node, srcBox.mcastAddr.Addr+uint64(slot*64), int64(size), 2)
			var cmd command.Command
			if _, err := dec.DecodeInto(&cmd, e.data); err != nil {
				r.corruptFrames.Inc()
				r.droppedBytes.Add(int64(size))
				e.refs.Add(-1)
				off += refRecordBytes
				continue
			}
			m.AdvanceNS(core, r.cfg.DecodeNSPerCommand)
			fn(cmd)
			// The reference is released only after fn returns: the decoded
			// views may alias the multicast entry, and the source recycles
			// the slot once the count hits zero.
			e.refs.Add(-1)
			off += refRecordBytes
			n++
		default:
			r.unknownFrames.Inc()
			r.droppedBytes.Add(int64(len(payload) - off))
			return n
		}
	}
	return n
}
