// Package routing implements the NUMA-optimized high-throughput data
// command routing layer of ERIS (Section 3.2, Figure 4).
//
// Partition tables — a CSB+-tree range table for attribute-partitioned
// objects, a bitmap table for physically partitioned (scan-only) objects —
// map a data command to its responsible AEUs. They are small, rarely
// written (only by the load balancer) and frequently read, so they are
// published via atomic pointer swaps and read latch-free; as in the paper,
// reads are assumed cache-resident and charge only CPU time.
//
// Each AEU owns an Outbox: one private unicast buffer per peer AEU, a
// multicast table, and per-peer multicast reference buffers. Commands are
// appended locally (no synchronization, no remote traffic) and whole
// buffers are copied to the target's Inbox when full or at the end of the
// AEU loop, so the high remote latency is paid once per buffer instead of
// once per command.
//
// Each AEU owns an Inbox of two equal buffers guarded by the paper's
// 64-bit latch-free descriptor (1 active bit, 32 offset bits, 31 writer-
// count bits, updated with CAS), an adaptation of the LLAMA multi-buffer:
// any number of AEUs append to the writable buffer in parallel while the
// owner processes the other one.
package routing

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"eris/internal/csbtree"
)

// ObjectID identifies a data object (table or index) within the engine.
type ObjectID uint32

// TableKind distinguishes the two partition table variants.
type TableKind uint8

// Partition table kinds.
const (
	// RangePartitioned objects are split by key ranges (order-preserving).
	RangePartitioned TableKind = iota
	// SizePartitioned objects have no partitioning attribute; the bitmap
	// table only records which AEUs hold a partition.
	SizePartitioned
)

// PartitionIndex is the read interface shared by the CSB+-tree table and
// the flat-array ablation variant.
type PartitionIndex interface {
	Lookup(key uint64) uint32
	LookupBatchSorted(keys []uint64, owners []uint32)
	Range(dst []csbtree.Entry, lo, hi uint64) []csbtree.Entry
	Len() int
}

// RangeTable maps key ranges to owning AEUs; readers are latch-free.
type RangeTable struct {
	idx atomic.Pointer[PartitionIndex]
}

// NewRangeTable builds a range table from entries (see csbtree.Build).
func NewRangeTable(entries []csbtree.Entry) (*RangeTable, error) {
	t, err := csbtree.Build(entries)
	if err != nil {
		return nil, err
	}
	rt := &RangeTable{}
	var pi PartitionIndex = t
	rt.idx.Store(&pi)
	return rt, nil
}

// NewFlatRangeTable builds the flat-array variant (ablation benchmark).
func NewFlatRangeTable(entries []csbtree.Entry) (*RangeTable, error) {
	f, err := csbtree.BuildFlat(entries)
	if err != nil {
		return nil, err
	}
	rt := &RangeTable{}
	var pi PartitionIndex = f
	rt.idx.Store(&pi)
	return rt, nil
}

// Owner returns the AEU responsible for key.
//
//eris:hotpath
func (rt *RangeTable) Owner(key uint64) uint32 {
	return (*rt.idx.Load()).Lookup(key)
}

// Owners appends the entries intersecting [lo, hi] to dst.
//
//eris:hotpath
func (rt *RangeTable) Owners(dst []csbtree.Entry, lo, hi uint64) []csbtree.Entry {
	return (*rt.idx.Load()).Range(dst, lo, hi)
}

// OwnersSorted resolves the owner of every key of an ascending-sorted
// batch in one pass over the partition table (one descent plus a linear
// merge); owners must have at least len(keys) elements.
//
//eris:hotpath
func (rt *RangeTable) OwnersSorted(keys []uint64, owners []uint32) {
	(*rt.idx.Load()).LookupBatchSorted(keys, owners)
}

// Entries returns the current partitioning (for monitoring and the
// balancer). Only valid for the CSB+ variant.
func (rt *RangeTable) Entries() []csbtree.Entry {
	if t, ok := (*rt.idx.Load()).(*csbtree.Tree); ok {
		return t.Entries()
	}
	return nil
}

// Update publishes a new partitioning; concurrent readers keep using the
// old table until the swap and never block.
func (rt *RangeTable) Update(entries []csbtree.Entry) error {
	t, err := csbtree.Build(entries)
	if err != nil {
		return err
	}
	var pi PartitionIndex = t
	rt.idx.Store(&pi)
	return nil
}

// BitmapTable records which AEUs hold a partition of a size-partitioned
// object. The bitmap is immutable once published; updates swap the pointer.
type BitmapTable struct {
	words atomic.Pointer[[]uint64]
}

// NewBitmapTable builds a table with the given AEUs set.
func NewBitmapTable(aeus []uint32, numAEUs int) *BitmapTable {
	bt := &BitmapTable{}
	bt.Update(aeus, numAEUs)
	return bt
}

// Update publishes a new holder set.
func (bt *BitmapTable) Update(aeus []uint32, numAEUs int) {
	words := make([]uint64, (numAEUs+63)/64)
	for _, a := range aeus {
		words[a/64] |= 1 << (a % 64)
	}
	bt.words.Store(&words)
}

// Holds reports whether aeu stores a partition.
func (bt *BitmapTable) Holds(aeu uint32) bool {
	words := *bt.words.Load()
	return words[aeu/64]&(1<<(aeu%64)) != 0
}

// Holders appends all holding AEUs to dst in ascending order.
func (bt *BitmapTable) Holders(dst []uint32) []uint32 {
	words := *bt.words.Load()
	for w, m := range words {
		for ; m != 0; m &= m - 1 {
			dst = append(dst, uint32(w*64+bits.TrailingZeros64(m)))
		}
	}
	return dst
}

// Count returns the number of holders.
func (bt *BitmapTable) Count() int {
	words := *bt.words.Load()
	n := 0
	for _, m := range words {
		n += bits.OnesCount64(m)
	}
	return n
}

// object bundles one data object's routing state.
type object struct {
	kind   TableKind
	ranged *RangeTable
	bitmap *BitmapTable
}

func (o *object) String() string {
	if o.kind == RangePartitioned {
		return fmt.Sprintf("range-partitioned (%d ranges)", (*o.ranged.idx.Load()).Len())
	}
	return fmt.Sprintf("size-partitioned (%d holders)", o.bitmap.Count())
}
