package routing

import (
	"sync"
	"testing"
	"time"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/mem"
	"eris/internal/metrics"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// TestInboxOversizedPayloadDivertsImmediately covers the up-front capacity
// check: a payload larger than a whole buffer can never fit, so Append must
// divert it straight to the overflow queue instead of burning through the
// full backoff budget (2048 spins with sleeps) first.
func TestInboxOversizedPayloadDivertsImmediately(t *testing.T) {
	machine, _ := numasim.New(topology.SingleNode(4), numasim.Config{})
	sys := mem.NewSystem(machine)
	in := newInbox(sys.Node(0), 16, metrics.NewRegistry(), 0)

	big := make([]byte, 32)
	for i := range big {
		big[i] = 'A'
	}
	start := time.Now()
	buf, waits := in.Append(big)
	elapsed := time.Since(start)
	if buf != -1 {
		t.Fatalf("oversized append reported buffer %d, want -1 (overflow)", buf)
	}
	if waits != 0 {
		t.Fatalf("oversized append reported %d full-buffer waits, want 0", waits)
	}
	// The old behaviour slept through ~2048 backoff iterations (tens of
	// milliseconds); the direct divert is effectively instant.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("oversized append took %v, should divert without spinning", elapsed)
	}
	st := in.Stats()
	if st.Oversized != 1 || st.Overflows != 1 {
		t.Fatalf("stats = %+v, want Oversized=1 Overflows=1", st)
	}
	if got := in.Swap(); string(got) != string(big) {
		t.Fatalf("swap payload = %q", got)
	}
	// A payload that exactly fits is NOT oversized.
	fits := make([]byte, 16)
	if buf, _ := in.Append(fits); buf == -1 {
		t.Fatal("exact-fit payload diverted to overflow")
	}
	if st := in.Stats(); st.Oversized != 1 {
		t.Fatalf("oversized = %d after exact-fit append", st.Oversized)
	}
}

// checkNoDuplicates asserts the touched list holds each target at most once.
func checkNoDuplicates(t *testing.T, o *Outbox, when string) {
	t.Helper()
	seen := make(map[uint32]bool, len(o.touched))
	for _, to := range o.touched {
		if seen[to] {
			t.Fatalf("%s: target %d appears twice in touched %v", when, to, o.touched)
		}
		seen[to] = true
	}
	if len(o.touched) > o.r.numAEUs {
		t.Fatalf("%s: touched grew to %d entries for %d AEUs", when, len(o.touched), o.r.numAEUs)
	}
}

// TestOutboxTouchedNoDuplicates exercises the FlushTarget/markTouched
// interaction: an auto-flush mid-iteration used to leave the target in
// touched while clearing dirty, so the next markTouched appended a
// duplicate and touched accumulated repeats within one loop iteration.
func TestOutboxTouchedNoDuplicates(t *testing.T) {
	r := newRouter(t, 4, Config{OutBufBytes: 64})
	if err := r.RegisterRange(1, uniformRanges(4)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterSize(2, []uint32{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(0)
	span := uint64(1 << 18)
	for round := 0; round < 3; round++ {
		// Unicast path: each batch spreads over all 4 targets; the tiny
		// 64-byte buffer forces an auto-flush roughly every append.
		for i := 0; i < 50; i++ {
			keys := []uint64{uint64(i), span + uint64(i), 2*span + uint64(i), 3*span + uint64(i)}
			ob.RouteLookup(1, keys, command.NoReply, 0)
			checkNoDuplicates(t, ob, "after RouteLookup")
		}
		if ob.Stats().Flushes == 0 {
			t.Fatal("test did not trigger auto flushes; shrink OutBufBytes")
		}
		// Multicast path flushes reference buffers mid-iteration too.
		for i := 0; i < 20; i++ {
			ob.RouteScan(2, colstore.Predicate{Op: colstore.All}, command.NoReply, 0)
			checkNoDuplicates(t, ob, "after RouteScan")
		}
		ob.Flush()
		if len(ob.touched) != 0 {
			t.Fatalf("touched not drained by Flush: %v", ob.touched)
		}
		for to, q := range ob.queued {
			if q {
				t.Fatalf("target %d still queued after Flush", to)
			}
		}
		// Drain the inboxes so multicast slots recycle between rounds.
		for a := uint32(0); a < 4; a++ {
			r.Drain(a, func(command.Command) {})
		}
	}
}

// TestInboxStressConcurrent is the concurrent Append/Swap stress test: many
// writers append framed records (including oversized ones that must take
// the overflow path) while the owner swaps continuously. Run under -race it
// validates the latch-free descriptor protocol, the overflow drain, and the
// offset/writer-count invariants.
func TestInboxStressConcurrent(t *testing.T) {
	const (
		capacity  = 128
		oversized = 200 // record body larger than a whole buffer, < 256 so it fits the length byte
		writers   = 8
		per       = 400
	)
	machine, _ := numasim.New(topology.SingleNode(4), numasim.Config{})
	sys := mem.NewSystem(machine)
	in := newInbox(sys.Node(0), capacity, metrics.NewRegistry(), 0)

	var wantBytes int64
	var wantBytesMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			var sent int64
			for i := 0; i < per; i++ {
				// Record: [writer][len][len bytes of writer]. Every 50th
				// record is larger than the whole buffer and must divert.
				n := 3 + i%13
				if i%50 == 49 {
					n = oversized
				}
				rec := make([]byte, 2+n)
				rec[0] = id
				rec[1] = byte(n)
				for j := 0; j < n; j++ {
					rec[2+j] = id
				}
				in.Append(rec)
				sent += int64(len(rec))
			}
			wantBytesMu.Lock()
			wantBytes += sent
			wantBytesMu.Unlock()
		}(byte(w + 1))
	}

	counts := make(map[byte]int)
	var gotBytes int64
	parse := func(payload []byte) {
		for off := 0; off < len(payload); {
			if off+2 > len(payload) {
				t.Fatalf("truncated header at offset %d of %d", off, len(payload))
			}
			id, n := payload[off], int(payload[off+1])
			if id == 0 || int(id) > writers {
				t.Fatalf("corrupt writer id %d at offset %d", id, off)
			}
			if off+2+n > len(payload) {
				t.Fatalf("truncated record at offset %d: len %d, have %d", off, n, len(payload)-off-2)
			}
			for j := 0; j < n; j++ {
				if payload[off+2+j] != id {
					t.Fatalf("torn record of writer %d at offset %d", id, off)
				}
			}
			counts[id]++
			gotBytes += int64(2 + n)
			off += 2 + n
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
loop:
	for {
		parse(in.Swap())
		select {
		case <-done:
			break loop
		default:
		}
	}
	// Drain both buffers and the overflow queue after the writers stopped.
	parse(in.Swap())
	parse(in.Swap())

	for w := 1; w <= writers; w++ {
		if counts[byte(w)] != per {
			t.Errorf("writer %d: %d records delivered, want %d", w, counts[byte(w)], per)
		}
	}
	st := in.Stats()
	if gotBytes != wantBytes || st.Bytes != wantBytes {
		t.Errorf("bytes: sent %d, parsed %d, counted %d", wantBytes, gotBytes, st.Bytes)
	}
	if st.Oversized == 0 || st.Overflows < st.Oversized {
		t.Errorf("stats = %+v, want oversized appends counted as overflows", st)
	}
	if st.Appends+st.Overflows != int64(writers*per) {
		t.Errorf("appends %d + overflows %d != %d records", st.Appends, st.Overflows, writers*per)
	}
	// Descriptor invariants once quiescent: no writer registered, offsets
	// within capacity, and exactly one buffer active.
	active := 0
	for i := range in.desc {
		d := in.desc[i].Load()
		if w := d & descWriterMask; w != 0 {
			t.Errorf("buffer %d: %d writers registered after drain", i, w)
		}
		if off := descOffset(d); off > capacity {
			t.Errorf("buffer %d: offset %d exceeds capacity %d", i, off, capacity)
		}
		if d&descActive != 0 {
			active++
		}
	}
	if active != 1 {
		t.Errorf("%d active buffers, want 1", active)
	}
}
