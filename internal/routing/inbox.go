package routing

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eris/internal/mem"
	"eris/internal/metrics"
)

// Descriptor layout (one uint64, updated with CAS as in the paper):
//
//	bit  63     : active — the buffer currently accepts writes
//	bits 62..31 : offset — bytes appended so far (32 bits)
//	bits 30..0  : writers — appends in flight (31 bits)
const (
	descActive     = uint64(1) << 63
	descOffsetOne  = uint64(1) << 31
	descWriterMask = uint64(1)<<31 - 1
)

//eris:hotpath
func descOffset(d uint64) uint64 { return (d >> 31) & (1<<32 - 1) }

// Backoff tuning for writers blocked on a full or swapping buffer: after
// spinSpins busy iterations the writer sleeps between retries so that the
// buffer's owner actually gets CPU time (the simulation host is often a
// single core), and after overflowSpins total iterations it gives up and
// diverts to the overflow queue. The queue keeps the system live when an
// experiment undersizes the incoming buffers; its use is counted so
// benchmarks can report it.
const (
	spinSpins     = 64
	sleepBackoff  = 20 * time.Microsecond
	overflowSpins = 1 << 11
)

// Inbox is one AEU's pair of incoming data command buffers.
type Inbox struct {
	bufs     [2][]byte
	desc     [2]atomic.Uint64
	writable atomic.Int32

	// Synthetic addresses of the two buffers (homed on the owner's node)
	// for cost accounting.
	blocks [2]mem.Block

	overflowMu sync.Mutex
	overflow   []byte

	// Counters, registered on the engine's metrics registry under
	// routing.inbox.<aeu>.*.
	appends   *metrics.Counter
	bytes     *metrics.Counter
	swaps     *metrics.Counter
	overflows *metrics.Counter
	oversized *metrics.Counter
	casRetry  *metrics.Counter
}

// newInbox builds an inbox with two size-byte buffers whose backing blocks
// are allocated on the owner's node manager; its counters register on reg
// under the owning AEU's id.
func newInbox(mgr *mem.Manager, size int, reg *metrics.Registry, id uint32) *Inbox {
	prefix := fmt.Sprintf("routing.inbox.%d.", id)
	in := &Inbox{
		appends:   reg.Counter(prefix + "appends"),
		bytes:     reg.Counter(prefix + "bytes"),
		swaps:     reg.Counter(prefix + "swaps"),
		overflows: reg.Counter(prefix + "overflows"),
		oversized: reg.Counter(prefix + "oversized"),
		casRetry:  reg.Counter(prefix + "cas_retries"),
	}
	for i := range in.bufs {
		in.bufs[i] = make([]byte, size)
		in.blocks[i] = mgr.Alloc(int64(size))
	}
	in.desc[0].Store(descActive)
	return in
}

// Capacity returns the size of one of the two buffers.
func (in *Inbox) Capacity() int { return len(in.bufs[0]) }

// Append copies data into the writable buffer using the latch-free
// descriptor protocol. It returns the buffer index written (-1 when the
// data was diverted to the overflow queue) and the number of full-buffer
// wait spins, which the caller charges as virtual wait time (backpressure:
// a producer blocked on a full remote buffer burns real time on real
// hardware too).
//
//eris:hotpath
func (in *Inbox) Append(data []byte) (int, int) {
	size := uint64(len(data))
	if size == 0 {
		return int(in.writable.Load()), 0
	}
	if len(data) > len(in.bufs[0]) {
		// The payload can never fit in a buffer, no matter how often the
		// owner swaps: spinning through the full backoff budget would only
		// burn time. Divert straight to the overflow queue.
		in.oversized.Inc()
		in.appendOverflow(data)
		return -1, 0
	}
	waits := 0
	for spins := 0; ; spins++ {
		w := in.writable.Load()
		d := in.desc[w].Load()
		if d&descActive == 0 {
			// Owner is mid-swap; the writable index is about to change.
			backoff(spins)
			if spins > overflowSpins {
				in.appendOverflow(data)
				return -1, waits
			}
			continue
		}
		off := descOffset(d)
		if off+size > uint64(len(in.bufs[w])) {
			// Buffer full: wait for the owner to swap.
			waits++
			backoff(spins)
			if spins > overflowSpins {
				in.appendOverflow(data)
				return -1, waits
			}
			continue
		}
		// Reserve space and register as a writer in one CAS.
		nd := d + size<<31 + 1
		if !in.desc[w].CompareAndSwap(d, nd) {
			in.casRetry.Inc()
			continue
		}
		copy(in.bufs[w][off:], data)
		// Deregister: writers live in the low bits, so a plain decrement
		// cannot touch offset or active.
		in.desc[w].Add(^uint64(0))
		in.appends.Inc()
		in.bytes.Add(int64(size))
		return int(w), waits
	}
}

//eris:hotpath
func (in *Inbox) appendOverflow(data []byte) {
	in.overflowMu.Lock() //eris:allowblock overflow spill is already off the CAS fast path; bounded append under the lock
	in.overflow = append(in.overflow, data...)
	in.overflowMu.Unlock()
	in.overflows.Inc()
	in.bytes.Add(int64(len(data)))
}

// backoff yields briefly at first and sleeps once a writer has clearly
// been waiting on the owner for a while.
//
//eris:hotpath
func backoff(spins int) {
	if spins < spinSpins {
		runtime.Gosched()
		return
	}
	time.Sleep(sleepBackoff) //eris:allowblock modeled backpressure: a full ring must stall the writer, per DESIGN.md
}

// Swap flips the double buffer: the previously writable buffer is drained
// (waiting for in-flight writers) and its payload returned, valid until the
// next Swap. Only the owning AEU calls Swap. Overflow-queued bytes are
// appended to the returned payload.
//
//eris:hotpath
func (in *Inbox) Swap() []byte {
	old := in.writable.Load()
	next := 1 - old
	// Activate the other buffer first so writers always find an active
	// buffer, then move the writable pointer, then retire the old buffer.
	in.desc[next].Store(descActive)
	in.writable.Store(next)
	var d uint64
	for {
		d = in.desc[old].Load()
		if in.desc[old].CompareAndSwap(d, d&^descActive) {
			break
		}
	}
	// Wait until in-flight appends to the old buffer complete.
	for {
		d = in.desc[old].Load()
		if d&descWriterMask == 0 {
			break
		}
		runtime.Gosched()
	}
	in.swaps.Inc()
	payload := in.bufs[old][:descOffset(d)]

	in.overflowMu.Lock() //eris:allowblock bounded overflow drain under the lock; the common case holds it for an empty check
	if len(in.overflow) > 0 {
		payload = append(append([]byte(nil), payload...), in.overflow...)
		in.overflow = in.overflow[:0]
	}
	in.overflowMu.Unlock()
	return payload
}

// resetOld marks the drained buffer empty; Swap leaves the old descriptor
// inactive with its offset intact so the owner can read the payload, and
// the *next* Swap's Store(descActive) clears it — no extra step needed.

// InboxStats is a snapshot of inbox counters.
type InboxStats struct {
	Appends    int64
	Bytes      int64
	Swaps      int64
	Overflows  int64
	Oversized  int64 // appends larger than a whole buffer, diverted directly
	CASRetries int64
}

// Stats returns a snapshot of the inbox counters. The same values are
// available through the engine's metrics registry as routing.inbox.<aeu>.*.
func (in *Inbox) Stats() InboxStats {
	return InboxStats{
		Appends:    in.appends.Load(),
		Bytes:      in.bytes.Load(),
		Swaps:      in.swaps.Load(),
		Overflows:  in.overflows.Load(),
		Oversized:  in.oversized.Load(),
		CASRetries: in.casRetry.Load(),
	}
}
