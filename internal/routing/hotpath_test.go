package routing

// Tests for the zero-allocation data-command hot path: route-time chunking
// against OutBufBytes, duplicate-key ordering across the sorted route
// split, aliasing safety of zero-copy drained views under a concurrent
// inbox writer (run with -race), and steady-state allocation guards.

import (
	"sync"
	"testing"

	"eris/internal/command"
	"eris/internal/prefixtree"
)

// TestRouteLookupChunksToOutBufBytes routes a batch much larger than the
// outgoing buffer and asserts every emitted command fits the buffer after
// framing, no chunk exceeds the advertised key cap, and no key is lost or
// duplicated.
func TestRouteLookupChunksToOutBufBytes(t *testing.T) {
	const bufBytes = 64
	r := newRouter(t, 2, Config{OutBufBytes: bufBytes})
	if err := r.RegisterRange(1, uniformRanges(2)); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(0)
	keys := make([]uint64, 101)
	for i := range keys {
		keys[i] = uint64(i*9973) % (1 << 20)
	}
	emitted := ob.RouteLookup(1, keys, command.NoReply, 3)
	ob.Flush()

	maxKeys := command.MaxLookupKeys(bufBytes)
	got := map[uint64]int{}
	cmds := 0
	for aeu := uint32(0); aeu < 2; aeu++ {
		r.Drain(aeu, func(c command.Command) {
			cmds++
			if n := 1 + c.EncodedSize(); n > bufBytes {
				t.Errorf("framed command is %d bytes, exceeds OutBufBytes %d", n, bufBytes)
			}
			if len(c.Keys) > maxKeys {
				t.Errorf("chunk carries %d keys, cap is %d", len(c.Keys), maxKeys)
			}
			for _, k := range c.Keys {
				got[k]++
			}
		})
	}
	if cmds != emitted {
		t.Errorf("drained %d commands, RouteLookup reported %d", cmds, emitted)
	}
	for _, k := range keys {
		if got[k] != 1 {
			t.Errorf("key %d delivered %d times", k, got[k])
		}
	}
}

// TestRouteUpsertChunksPreserveDuplicateOrder routes a KV batch with
// duplicate keys through the sorted, chunked split and asserts that
// applying the drained commands in arrival order yields last-write-wins
// per the original batch order (the stable sort contract), while every
// chunk still fits the outgoing buffer.
func TestRouteUpsertChunksPreserveDuplicateOrder(t *testing.T) {
	const bufBytes = 64
	r := newRouter(t, 2, Config{OutBufBytes: bufBytes})
	if err := r.RegisterRange(1, uniformRanges(2)); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(0)
	// 10 distinct keys x 4 duplicates; the value encodes the position so
	// the expected winner is the highest value per key.
	kvs := make([]prefixtree.KV, 0, 40)
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < 10; i++ {
			key := uint64(i) * (1 << 16) // spread over both partitions
			kvs = append(kvs, prefixtree.KV{Key: key, Value: uint64(len(kvs))})
		}
	}
	want := map[uint64]uint64{}
	for _, kv := range kvs {
		want[kv.Key] = kv.Value
	}
	emitted := ob.RouteUpsert(1, kvs, command.NoReply, 9)
	ob.Flush()

	maxKVs := command.MaxUpsertKVs(bufBytes)
	applied := map[uint64]uint64{}
	cmds := 0
	for aeu := uint32(0); aeu < 2; aeu++ {
		r.Drain(aeu, func(c command.Command) {
			cmds++
			if n := 1 + c.EncodedSize(); n > bufBytes {
				t.Errorf("framed command is %d bytes, exceeds OutBufBytes %d", n, bufBytes)
			}
			if len(c.KVs) > maxKVs {
				t.Errorf("chunk carries %d KVs, cap is %d", len(c.KVs), maxKVs)
			}
			for _, kv := range c.KVs {
				applied[kv.Key] = kv.Value
			}
		})
	}
	if cmds != emitted {
		t.Errorf("drained %d commands, RouteUpsert reported %d", cmds, emitted)
	}
	if len(applied) != len(want) {
		t.Fatalf("applied %d distinct keys, want %d", len(applied), len(want))
	}
	for k, v := range want {
		if applied[k] != v {
			t.Errorf("key %d: final value %d, want %d (duplicate order broken)", k, applied[k], v)
		}
	}
}

// TestDrainViewsAliasSafetyConcurrent drains zero-copy command views while
// a concurrent remote writer keeps appending to the other inbox half. Under
// -race this validates that views never alias buffer space a writer may
// touch; the pattern check catches logical corruption either way.
func TestDrainViewsAliasSafetyConcurrent(t *testing.T) {
	r := newRouter(t, 2, Config{})
	if err := r.RegisterRange(1, uniformRanges(2)); err != nil {
		t.Fatal(err)
	}
	const (
		batches = 2000
		perBat  = 32
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ob := r.Outbox(1)
		keys := make([]uint64, perBat)
		for b := 0; b < batches; b++ {
			for i := range keys {
				// All keys land in AEU 0's partition and satisfy k%8 == 5.
				keys[i] = (uint64(b*perBat+i)*8 + 5) % (1 << 19)
			}
			ob.RouteLookup(1, keys, command.NoReply, uint64(b))
			ob.Flush()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	drained := 0
	check := func(c command.Command) {
		for _, k := range c.Keys {
			if k%8 != 5 {
				t.Errorf("corrupt key view %d (want k%%8 == 5)", k)
			}
			drained++
		}
	}
	for {
		r.Drain(0, check)
		select {
		case <-done:
			r.Drain(0, check) // both halves
			r.Drain(0, check)
			if drained != batches*perBat {
				t.Fatalf("drained %d keys, want %d", drained, batches*perBat)
			}
			return
		default:
		}
	}
}

// TestRouteAndDrainSteadyStateAllocs is the allocation regression guard for
// the routing hot path: after warm-up, one route-split + flush + drain
// cycle must not allocate.
func TestRouteAndDrainSteadyStateAllocs(t *testing.T) {
	r := newRouter(t, 4, Config{})
	if err := r.RegisterRange(1, uniformRanges(4)); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(0)
	keys := make([]uint64, 64)
	kvs := make([]prefixtree.KV, 64)
	for i := range keys {
		keys[i] = uint64(i*16381) % (1 << 20)
		kvs[i] = prefixtree.KV{Key: keys[i], Value: uint64(i)}
	}
	sink := func(command.Command) {}
	run := func() {
		ob.RouteLookup(1, keys, command.NoReply, 0)
		ob.RouteUpsert(1, kvs, command.NoReply, 0)
		ob.Flush()
		for aeu := uint32(0); aeu < 4; aeu++ {
			r.Drain(aeu, sink)
		}
	}
	for i := 0; i < 32; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Errorf("route+drain cycle allocates %.1f times, want 0", avg)
	}
}
