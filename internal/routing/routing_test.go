package routing

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/csbtree"
	"eris/internal/mem"
	"eris/internal/metrics"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/topology"
)

func newRouter(t testing.TB, numAEUs int, cfg Config) *Router {
	t.Helper()
	machine, err := numasim.New(topology.Intel(), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(machine, mem.NewSystem(machine), numAEUs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// uniformRanges builds an even partitioning of [0, 1<<20) over n AEUs.
func uniformRanges(n int) []csbtree.Entry {
	entries := make([]csbtree.Entry, n)
	span := uint64(1<<20) / uint64(n)
	for i := range entries {
		entries[i] = csbtree.Entry{Low: uint64(i) * span, Owner: uint32(i)}
	}
	entries[0].Low = 0
	return entries
}

func TestRegisterAndOwnership(t *testing.T) {
	r := newRouter(t, 4, Config{})
	if err := r.RegisterRange(1, uniformRanges(4)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterRange(1, uniformRanges(4)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := r.Owner(1, 0); got != 0 {
		t.Errorf("owner(0) = %d", got)
	}
	if got := r.Owner(1, 1<<20-1); got != 3 {
		t.Errorf("owner(max) = %d", got)
	}
	if r.Kind(1) != RangePartitioned {
		t.Error("wrong kind")
	}
}

func TestRouteLookupSplitsByOwner(t *testing.T) {
	r := newRouter(t, 4, Config{})
	if err := r.RegisterRange(1, uniformRanges(4)); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(0)
	span := uint64(1 << 18)
	keys := []uint64{1, span + 1, 2 * span, 3 * span, 5, 3*span + 7}
	n := ob.RouteLookup(1, keys, command.NoReply, 42)
	if n != 4 {
		t.Fatalf("routed to %d targets, want 4", n)
	}
	ob.Flush()
	// Each AEU drains its inbox and must see exactly its own keys.
	wantKeys := map[uint32][]uint64{
		0: {1, 5}, 1: {span + 1}, 2: {2 * span}, 3: {3 * span, 3*span + 7},
	}
	for aeu := uint32(0); aeu < 4; aeu++ {
		var got []uint64
		r.Drain(aeu, func(c command.Command) {
			if c.Op != command.OpLookup || c.Object != 1 || c.Source != 0 || c.Tag != 42 {
				t.Errorf("aeu %d: bad command %+v", aeu, c)
			}
			got = append(got, c.Keys...)
		})
		want := wantKeys[aeu]
		if len(got) != len(want) {
			t.Fatalf("aeu %d got keys %v, want %v", aeu, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("aeu %d got keys %v, want %v", aeu, got, want)
			}
		}
	}
}

func TestRouteUpsert(t *testing.T) {
	r := newRouter(t, 2, Config{})
	entries := []csbtree.Entry{{Low: 0, Owner: 0}, {Low: 100, Owner: 1}}
	if err := r.RegisterRange(7, entries); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(1)
	kvs := []prefixtree.KV{{Key: 5, Value: 50}, {Key: 200, Value: 2000}}
	ob.RouteUpsert(7, kvs, command.NoReply, 0)
	ob.Flush()
	var got0, got1 []prefixtree.KV
	r.Drain(0, func(c command.Command) { got0 = append(got0, c.KVs...) })
	r.Drain(1, func(c command.Command) { got1 = append(got1, c.KVs...) })
	if len(got0) != 1 || got0[0].Key != 5 || got0[0].Value != 50 {
		t.Errorf("aeu0 kvs = %+v", got0)
	}
	if len(got1) != 1 || got1[0].Key != 200 {
		t.Errorf("aeu1 kvs = %+v", got1)
	}
}

func TestMulticastScan(t *testing.T) {
	r := newRouter(t, 4, Config{})
	if err := r.RegisterSize(2, []uint32{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(1)
	n := ob.RouteScan(2, colstore.Predicate{Op: colstore.Less, Operand: 99}, 1, 7)
	if n != 3 {
		t.Fatalf("multicast to %d targets", n)
	}
	ob.Flush()
	for _, aeu := range []uint32{0, 2, 3} {
		count := 0
		r.Drain(aeu, func(c command.Command) {
			count++
			if c.Op != command.OpScan || c.Pred.Operand != 99 || c.ReplyTo != 1 || c.Tag != 7 {
				t.Errorf("aeu %d: %+v", aeu, c)
			}
		})
		if count != 1 {
			t.Errorf("aeu %d saw %d commands", aeu, count)
		}
	}
	// AEU 1 holds nothing and must see nothing.
	if n := r.Drain(1, func(command.Command) {}); n != 0 {
		t.Errorf("non-holder received %d commands", n)
	}
	// All multicast references consumed: slot reusable.
	if got := r.Outbox(1).mcast[0].refs.Load(); got != 0 {
		t.Errorf("dangling refs: %d", got)
	}
}

func TestRouteRangeScan(t *testing.T) {
	r := newRouter(t, 4, Config{})
	if err := r.RegisterRange(3, uniformRanges(4)); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(0)
	span := uint64(1 << 18)
	// Range covering partitions 1 and 2 only.
	n := ob.RouteRangeScan(3, span+5, 2*span+5, colstore.Predicate{Op: colstore.All}, command.NoReply, 0)
	if n != 2 {
		t.Fatalf("range scan hit %d targets, want 2", n)
	}
	ob.Flush()
	for aeu := uint32(0); aeu < 4; aeu++ {
		want := 0
		if aeu == 1 || aeu == 2 {
			want = 1
		}
		got := 0
		r.Drain(aeu, func(c command.Command) {
			got++
			if len(c.Keys) != 2 || c.Keys[0] != span+5 || c.Keys[1] != 2*span+5 {
				t.Errorf("aeu %d: scan bounds %v", aeu, c.Keys)
			}
		})
		if got != want {
			t.Errorf("aeu %d saw %d scans, want %d", aeu, got, want)
		}
	}
}

func TestAutoFlushOnFullBuffer(t *testing.T) {
	r := newRouter(t, 2, Config{OutBufBytes: 128})
	if err := r.RegisterRange(1, []csbtree.Entry{{Low: 0, Owner: 1}}); err != nil {
		t.Fatal(err)
	}
	ob := r.Outbox(0)
	// Each lookup command is ~40 bytes; routing many must auto-flush.
	for i := 0; i < 50; i++ {
		ob.RouteLookup(1, []uint64{uint64(i)}, command.NoReply, 0)
	}
	if ob.Stats().Flushes == 0 {
		t.Fatal("no auto flush despite tiny buffer")
	}
	ob.Flush()
	total := 0
	r.Drain(1, func(c command.Command) { total += len(c.Keys) })
	if total != 50 {
		t.Fatalf("delivered %d keys, want 50", total)
	}
}

func TestUpdateRangeRedirects(t *testing.T) {
	r := newRouter(t, 2, Config{})
	if err := r.RegisterRange(1, []csbtree.Entry{{Low: 0, Owner: 0}}); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(1, 500); got != 0 {
		t.Fatalf("owner = %d", got)
	}
	if err := r.UpdateRange(1, []csbtree.Entry{{Low: 0, Owner: 0}, {Low: 100, Owner: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(1, 500); got != 1 {
		t.Fatalf("owner after update = %d", got)
	}
	if err := r.UpdateSize(1, nil); err == nil {
		t.Fatal("UpdateSize on range object accepted")
	}
}

func TestInboxDescriptorProtocol(t *testing.T) {
	machine, _ := numasim.New(topology.SingleNode(4), numasim.Config{})
	sys := mem.NewSystem(machine)
	in := newInbox(sys.Node(0), 1024, metrics.NewRegistry(), 0)
	in.Append([]byte("hello"))
	in.Append([]byte("world"))
	got := in.Swap()
	if string(got) != "helloworld" {
		t.Fatalf("payload = %q", got)
	}
	// Second swap returns empty.
	if got := in.Swap(); len(got) != 0 {
		t.Fatalf("second swap = %q", got)
	}
	// Writes after swap land in the other buffer.
	in.Append([]byte("x"))
	if got := in.Swap(); string(got) != "x" {
		t.Fatalf("third swap = %q", got)
	}
	st := in.Stats()
	if st.Appends != 3 || st.Swaps != 3 || st.Bytes != 11 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInboxConcurrentWriters(t *testing.T) {
	machine, _ := numasim.New(topology.SingleNode(4), numasim.Config{})
	sys := mem.NewSystem(machine)
	in := newInbox(sys.Node(0), 1<<16, metrics.NewRegistry(), 0)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			rec := make([]byte, 8)
			for i := 0; i < per; i++ {
				for j := range rec {
					rec[j] = id
				}
				in.Append(rec)
			}
		}(byte(w + 1))
	}
	// Owner concurrently swaps and validates records.
	counts := make(map[byte]int)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		payload := in.Swap()
		for off := 0; off+8 <= len(payload); off += 8 {
			id := payload[off]
			for j := 1; j < 8; j++ {
				if payload[off+j] != id {
					t.Errorf("torn record at %d: %v", off, payload[off:off+8])
					return
				}
			}
			counts[id]++
		}
		select {
		case <-done:
			payload := in.Swap()
			for off := 0; off+8 <= len(payload); off += 8 {
				counts[payload[off]]++
			}
			for w := 0; w < writers; w++ {
				if counts[byte(w+1)] != per {
					t.Fatalf("writer %d: %d records, want %d", w+1, counts[byte(w+1)], per)
				}
			}
			return
		default:
		}
	}
}

func TestInboxOverflowValve(t *testing.T) {
	machine, _ := numasim.New(topology.SingleNode(4), numasim.Config{})
	sys := mem.NewSystem(machine)
	in := newInbox(sys.Node(0), 16, metrics.NewRegistry(), 0)
	in.Append([]byte("0123456789abcdef")) // fills the buffer exactly
	// Next append cannot fit; with no owner swapping it must eventually
	// divert to the overflow queue rather than deadlock.
	in.Append([]byte("zz"))
	if in.Stats().Overflows != 1 {
		t.Fatalf("overflows = %d", in.Stats().Overflows)
	}
	payload := in.Swap()
	if string(payload) != "0123456789abcdefzz" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestFlushChargesRemoteTraffic(t *testing.T) {
	r := newRouter(t, 40, Config{})
	if err := r.RegisterRange(1, []csbtree.Entry{{Low: 0, Owner: 39}}); err != nil {
		t.Fatal(err) // AEU 39 lives on node 3
	}
	e := r.Machine().StartEpoch()
	ob := r.Outbox(0) // node 0
	ob.RouteLookup(1, []uint64{1, 2, 3}, command.NoReply, 0)
	ob.Flush()
	if got := e.TotalLinkBytes(); got == 0 {
		t.Error("remote flush produced no link traffic")
	}
}

func TestFlatTablesAblation(t *testing.T) {
	r := newRouter(t, 4, Config{FlatTables: true})
	if err := r.RegisterRange(1, uniformRanges(4)); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(1, 3*(1<<18)); got != 3 {
		t.Errorf("flat owner = %d", got)
	}
	if err := r.UpdateRange(1, uniformRanges(2)); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(1, 1<<19); got != 1 {
		t.Errorf("flat owner after update = %d", got)
	}
	// Entries() is CSB+-only; the flat variant reports nil.
	if got := r.OwnerEntries(1); got != nil {
		t.Errorf("flat entries = %v", got)
	}
}

func TestManyAEUsAllToAll(t *testing.T) {
	r := newRouter(t, 40, Config{OutBufBytes: 512})
	if err := r.RegisterRange(1, func() []csbtree.Entry {
		entries := make([]csbtree.Entry, 40)
		for i := range entries {
			entries[i] = csbtree.Entry{Low: uint64(i) << 10, Owner: uint32(i)}
		}
		entries[0].Low = 0
		return entries
	}()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const perAEU = 200
	for a := 0; a < 40; a++ {
		wg.Add(1)
		go func(aeu uint32) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(aeu)))
			ob := r.Outbox(aeu)
			keys := make([]uint64, 16)
			for i := 0; i < perAEU/len(keys); i++ {
				for j := range keys {
					keys[j] = uint64(rng.Int63()) % (40 << 10)
				}
				ob.RouteLookup(1, keys, command.NoReply, 0)
			}
			ob.Flush()
		}(uint32(a))
	}
	wg.Wait()
	totalKeys := 0
	for a := uint32(0); a < 40; a++ {
		r.Drain(a, func(c command.Command) {
			for _, k := range c.Keys {
				if r.Owner(1, k) != a {
					t.Errorf("aeu %d received foreign key %d", a, k)
				}
			}
			totalKeys += len(c.Keys)
		})
	}
	if totalKeys != 40*perAEU-40*perAEU%16 {
		// Each AEU routed floor(perAEU/16)*16 keys.
		want := 40 * (perAEU / 16) * 16
		if totalKeys != want {
			t.Fatalf("delivered %d keys, want %d", totalKeys, want)
		}
	}
}

func TestNewRejectsBadAEUCount(t *testing.T) {
	machine, _ := numasim.New(topology.SingleNode(2), numasim.Config{})
	sys := mem.NewSystem(machine)
	if _, err := New(machine, sys, 0, Config{}); err == nil {
		t.Error("zero AEUs accepted")
	}
	if _, err := New(machine, sys, 3, Config{}); err == nil {
		t.Error("more AEUs than cores accepted")
	}
}

func TestObjectString(t *testing.T) {
	r := newRouter(t, 4, Config{})
	_ = r.RegisterRange(1, uniformRanges(4))
	_ = r.RegisterSize(2, []uint32{0, 1})
	for id, want := range map[ObjectID]string{
		1: "range-partitioned (4 ranges)",
		2: "size-partitioned (2 holders)",
	} {
		if got := r.object(id).String(); got != want {
			t.Errorf("object %d: %q, want %q", id, got, want)
		}
	}
	_ = fmt.Sprintf("%v", r.object(1))
}
