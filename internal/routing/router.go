package routing

import (
	"fmt"
	"sync"

	"eris/internal/command"
	"eris/internal/csbtree"
	"eris/internal/faults"
	"eris/internal/mem"
	"eris/internal/metrics"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// Config tunes the routing layer.
type Config struct {
	// OutBufBytes is the capacity of one private outgoing buffer (one per
	// target AEU per source AEU). Default 4096. Figure 5 sweeps this.
	OutBufBytes int
	// InBufBytes is the capacity of each of the two incoming buffers per
	// AEU. Default 1 MiB.
	InBufBytes int
	// MulticastSlots is the per-AEU multicast table capacity. Default 1024.
	MulticastSlots int
	// RouteNSPerKey is the CPU cost of one partition-table lookup; the
	// tables are cache-resident, so no memory access is charged. Default 3.
	RouteNSPerKey float64
	// DecodeNSPerCommand is the CPU cost of decoding one routed command.
	DecodeNSPerCommand float64
	// FlatTables switches the range partition tables to the sorted-array
	// variant (ablation benchmark).
	FlatTables bool
	// FlushOverlap is how many remote descriptor round trips an AEU keeps
	// in flight when flushing several outgoing buffers back to back
	// (independent atomics to distinct nodes). Default 8; the Figure 5
	// experiment sets 1 to isolate the pre-batching effect.
	FlushOverlap int
	// Metrics is the registry the routing counters are registered on. The
	// engine passes its own; nil creates a private registry (standalone
	// routers in tests and examples).
	Metrics *metrics.Registry
	// Faults is the engine's fault-injection registry; nil (the default)
	// disables every hook point.
	Faults *faults.Injector
}

func (c Config) withDefaults() Config {
	if c.OutBufBytes == 0 {
		c.OutBufBytes = 4096
	}
	if c.InBufBytes == 0 {
		c.InBufBytes = 1 << 20
	}
	if c.MulticastSlots == 0 {
		c.MulticastSlots = 1024
	}
	if c.RouteNSPerKey == 0 {
		c.RouteNSPerKey = 3
	}
	if c.DecodeNSPerCommand == 0 {
		c.DecodeNSPerCommand = 2
	}
	if c.FlushOverlap == 0 {
		c.FlushOverlap = 8
	}
	return c
}

// Router owns the partition tables, inboxes and outboxes of all AEUs of an
// engine. AEU i is pinned to core i of the machine.
type Router struct {
	machine *numasim.Machine
	mems    *mem.System
	cfg     Config
	numAEUs int
	metrics *metrics.Registry
	faults  *faults.Injector

	inboxes  []*Inbox
	outboxes []*Outbox

	// Drain-path corruption accounting: a frame that does not decode (or an
	// out-of-range multicast reference) is counted and dropped instead of
	// crashing the engine; the remainder of an unparseable unicast stream is
	// charged to droppedBytes because frame boundaries are part of the
	// payload and cannot be recovered past the corruption.
	corruptFrames *metrics.Counter
	unknownFrames *metrics.Counter
	droppedBytes  *metrics.Counter

	// drainDecs are per-AEU decoders: Drain(aeu, ...) reuses aeu's decoder
	// so repeated drains do not allocate. Only the owning AEU drains its
	// inbox, so no synchronization is needed.
	drainDecs []command.Decoder

	mu      sync.RWMutex
	objects map[ObjectID]*object
}

// New builds the routing layer for numAEUs workers.
func New(machine *numasim.Machine, mems *mem.System, numAEUs int, cfg Config) (*Router, error) {
	if numAEUs <= 0 || numAEUs > machine.Topology().NumCores() {
		return nil, fmt.Errorf("routing: numAEUs %d out of range (machine has %d cores)",
			numAEUs, machine.Topology().NumCores())
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Router{
		machine:       machine,
		mems:          mems,
		cfg:           cfg,
		numAEUs:       numAEUs,
		metrics:       reg,
		faults:        cfg.Faults,
		objects:       make(map[ObjectID]*object),
		corruptFrames: reg.Counter("routing.drain.corrupt_frames"),
		unknownFrames: reg.Counter("routing.drain.unknown_frames"),
		droppedBytes:  reg.Counter("routing.drain.dropped_bytes"),
	}
	topo := machine.Topology()
	r.inboxes = make([]*Inbox, numAEUs)
	r.outboxes = make([]*Outbox, numAEUs)
	r.drainDecs = make([]command.Decoder, numAEUs)
	for i := 0; i < numAEUs; i++ {
		node := topo.NodeOfCore(topology.CoreID(i))
		r.inboxes[i] = newInbox(mems.Node(node), cfg.InBufBytes, reg, uint32(i))
		r.outboxes[i] = newOutbox(r, uint32(i), node)
	}
	return r, nil
}

// Metrics returns the registry the routing layer's counters live on.
func (r *Router) Metrics() *metrics.Registry { return r.metrics }

// Faults returns the engine's fault-injection registry (nil when injection
// is disabled); the AEUs and the balancer pick their hooks up from here.
func (r *Router) Faults() *faults.Injector { return r.faults }

// NumAEUs returns the number of workers the router serves.
func (r *Router) NumAEUs() int { return r.numAEUs }

// Machine returns the simulated machine.
func (r *Router) Machine() *numasim.Machine { return r.machine }

// Config returns the effective configuration.
func (r *Router) Config() Config { return r.cfg }

// Inbox returns AEU aeu's incoming buffer pair.
func (r *Router) Inbox(aeu uint32) *Inbox { return r.inboxes[aeu] }

// Outbox returns AEU aeu's private outgoing buffers.
//
//eris:hotpath
func (r *Router) Outbox(aeu uint32) *Outbox { return r.outboxes[aeu] }

// nodeOfAEU returns the NUMA node AEU aeu is pinned on.
//
//eris:hotpath
func (r *Router) nodeOfAEU(aeu uint32) topology.NodeID {
	return r.machine.Topology().NodeOfCore(topology.CoreID(aeu))
}

// RegisterRange registers a range-partitioned object with the initial
// partitioning.
func (r *Router) RegisterRange(id ObjectID, entries []csbtree.Entry) error {
	var (
		rt  *RangeTable
		err error
	)
	if r.cfg.FlatTables {
		rt, err = NewFlatRangeTable(entries)
	} else {
		rt, err = NewRangeTable(entries)
	}
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.objects[id]; dup {
		return fmt.Errorf("routing: object %d already registered", id)
	}
	r.objects[id] = &object{kind: RangePartitioned, ranged: rt}
	return nil
}

// RegisterSize registers a size-partitioned (scan-only) object held by the
// given AEUs.
func (r *Router) RegisterSize(id ObjectID, holders []uint32) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.objects[id]; dup {
		return fmt.Errorf("routing: object %d already registered", id)
	}
	r.objects[id] = &object{kind: SizePartitioned, bitmap: NewBitmapTable(holders, r.numAEUs)}
	return nil
}

// object looks up a registered object; it panics on unknown IDs because
// commands for unregistered objects indicate an engine bug, not user error.
//
//eris:hotpath
func (r *Router) object(id ObjectID) *object {
	r.mu.RLock() //eris:allowblock read-mostly object table; write-locked only at registration time
	o := r.objects[id]
	r.mu.RUnlock()
	if o == nil {
		panic(fmt.Sprintf("routing: unknown object %d", id)) //eris:allowalloc allocates only on the panic path for an unregistered object; unreachable in a configured engine
	}
	return o
}

// Kind returns the partitioning kind of a registered object.
func (r *Router) Kind(id ObjectID) TableKind { return r.object(id).kind }

// Owner returns the AEU owning key in a range-partitioned object.
func (r *Router) Owner(id ObjectID, key uint64) uint32 {
	return r.object(id).ranged.Owner(key)
}

// OwnerEntries returns the current partitioning of a range object.
func (r *Router) OwnerEntries(id ObjectID) []csbtree.Entry {
	return r.object(id).ranged.Entries()
}

// UpdateRange publishes a new partitioning for a range object (load
// balancer only).
func (r *Router) UpdateRange(id ObjectID, entries []csbtree.Entry) error {
	o := r.object(id)
	if o.kind != RangePartitioned {
		return fmt.Errorf("routing: object %d is not range partitioned", id)
	}
	if r.cfg.FlatTables {
		rt, err := NewFlatRangeTable(entries)
		if err != nil {
			return err
		}
		o.ranged.idx.Store(rt.idx.Load())
		return nil
	}
	return o.ranged.Update(entries)
}

// UpdateSize publishes a new holder set for a size-partitioned object.
func (r *Router) UpdateSize(id ObjectID, holders []uint32) error {
	o := r.object(id)
	if o.kind != SizePartitioned {
		return fmt.Errorf("routing: object %d is not size partitioned", id)
	}
	o.bitmap.Update(holders, r.numAEUs)
	return nil
}

// Holders appends the AEUs holding a size-partitioned object to dst.
func (r *Router) Holders(id ObjectID, dst []uint32) []uint32 {
	return r.object(id).bitmap.Holders(dst)
}
