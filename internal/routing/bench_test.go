package routing

// Routing hot-path microbenchmarks (run with -benchmem): route-split of a
// key/KV batch across owners, and the owner-side drain of a full inbox
// payload. Drains run every few route iterations so buffers stay bounded
// and the flush/drain cost is amortized into the per-op numbers, exactly
// as in the AEU loop.

import (
	"testing"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/prefixtree"
)

const benchObj ObjectID = 1

// benchRouter builds a router over numAEUs cores of the Intel topology with
// one range object split evenly over [0, 1<<20).
func benchRouter(b *testing.B, numAEUs int) *Router {
	b.Helper()
	r := newRouter(b, numAEUs, Config{})
	if err := r.RegisterRange(benchObj, uniformRanges(numAEUs)); err != nil {
		b.Fatal(err)
	}
	return r
}

// drainAll empties every inbox, discarding the decoded commands.
func drainAll(r *Router, numAEUs int, fn func(command.Command)) {
	for a := 0; a < numAEUs; a++ {
		r.Drain(uint32(a), fn)
	}
}

func BenchmarkRouteLookup64(b *testing.B) {
	const numAEUs = 16
	r := benchRouter(b, numAEUs)
	ob := r.Outbox(0)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i*16381) % (1 << 20)
	}
	discard := func(command.Command) {}
	// Warm buffers and scratch before measuring.
	for i := 0; i < 32; i++ {
		ob.RouteLookup(benchObj, keys, command.NoReply, 0)
	}
	ob.Flush()
	drainAll(r, numAEUs, discard)
	b.SetBytes(64 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob.RouteLookup(benchObj, keys, command.NoReply, 0)
		if i%16 == 15 {
			ob.Flush()
			drainAll(r, numAEUs, discard)
		}
	}
	b.StopTimer()
	ob.Flush()
	drainAll(r, numAEUs, discard)
}

func BenchmarkRouteUpsert64(b *testing.B) {
	const numAEUs = 16
	r := benchRouter(b, numAEUs)
	ob := r.Outbox(0)
	kvs := make([]prefixtree.KV, 64)
	for i := range kvs {
		kvs[i] = prefixtree.KV{Key: uint64(i*16381) % (1 << 20), Value: uint64(i)}
	}
	discard := func(command.Command) {}
	for i := 0; i < 32; i++ {
		ob.RouteUpsert(benchObj, kvs, command.NoReply, 0)
	}
	ob.Flush()
	drainAll(r, numAEUs, discard)
	b.SetBytes(64 * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob.RouteUpsert(benchObj, kvs, command.NoReply, 0)
		if i%16 == 15 {
			ob.Flush()
			drainAll(r, numAEUs, discard)
		}
	}
	b.StopTimer()
	ob.Flush()
	drainAll(r, numAEUs, discard)
}

// BenchmarkDrainLookup64 isolates the owner-side path: one pre-encoded
// 64-key lookup lands in the inbox, Drain swaps and decodes it.
func BenchmarkDrainLookup64(b *testing.B) {
	r := benchRouter(b, 2)
	cmd := command.Command{Op: command.OpLookup, Object: uint32(benchObj), Source: 1, ReplyTo: command.NoReply}
	cmd.Keys = make([]uint64, 64)
	for i := range cmd.Keys {
		cmd.Keys[i] = uint64(i)
	}
	frame := []byte{1} // kindCmd
	frame = cmd.AppendEncode(frame)
	discard := func(command.Command) {}
	in := r.Inbox(0)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Append(frame)
		if r.Drain(0, discard) != 1 {
			b.Fatal("expected one command")
		}
	}
}

// BenchmarkOwnerPerKey is the partition-table baseline the sorted-batch
// resolution competes with: one CSB+-tree descent per key.
func BenchmarkOwnerPerKey(b *testing.B) {
	entries := uniformRanges(64)
	rt, err := NewRangeTable(entries)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i*16381) % (1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			sink += rt.Owner(k)
		}
	}
	_ = sink
}

func BenchmarkRangeScanSplit(b *testing.B) {
	const numAEUs = 16
	r := benchRouter(b, numAEUs)
	ob := r.Outbox(0)
	discard := func(command.Command) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob.RouteRangeScan(benchObj, 1<<10, 1<<19, colstore.Predicate{Op: colstore.All}, command.NoReply, 0)
		if i%16 == 15 {
			ob.Flush()
			drainAll(r, numAEUs, discard)
		}
	}
	b.StopTimer()
	ob.Flush()
	drainAll(r, numAEUs, discard)
}
