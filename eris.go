// Package eris is the public API of the ERIS storage engine
// reproduction: a NUMA-aware, data-oriented, in-memory storage engine for
// analytical workloads (Kissinger et al., ADMS/VLDB 2014), running on a
// simulated NUMA machine.
//
// An Engine runs one Autonomous Execution Unit (AEU) per simulated core.
// Data objects are either range-partitioned prefix-tree indexes (lookup,
// upsert, range scan) or size-partitioned columns (filtered full scans);
// each AEU exclusively owns one partition per object. Data commands travel
// through a NUMA-optimized routing layer, and an optional load balancer
// adapts the partitioning to workload skew at runtime.
//
// Basic use:
//
//	db, err := eris.Open(eris.Options{Machine: "intel"})
//	idx, err := db.CreateIndex("orders", 1<<20)
//	db.Start()
//	idx.Upsert([]eris.KV{{Key: 42, Value: 7}})
//	kvs, err := idx.Lookup([]uint64{42})
//	db.Close()
package eris

import (
	"sort"
	"time"

	"fmt"

	"eris/internal/aeu"
	"eris/internal/balance"
	"eris/internal/colstore"
	"eris/internal/core"
	"eris/internal/durable"
	"eris/internal/faults"
	"eris/internal/metrics"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/server"
	"eris/internal/topology"
	"eris/internal/wire"
)

// KV is a key/value pair.
type KV = prefixtree.KV

// Predicate filters scans; see the Pred* constructors.
type Predicate = colstore.Predicate

// Predicate constructors.
func PredAll() Predicate             { return Predicate{Op: colstore.All} }
func PredLess(v uint64) Predicate    { return Predicate{Op: colstore.Less, Operand: v} }
func PredGreater(v uint64) Predicate { return Predicate{Op: colstore.Greater, Operand: v} }
func PredEqual(v uint64) Predicate   { return Predicate{Op: colstore.Equal, Operand: v} }
func PredBetween(lo, hi uint64) Predicate {
	return Predicate{Op: colstore.Between, Operand: lo, High: hi}
}

// ScanResult aggregates a scan: how many values matched and their sum.
type ScanResult = core.ScanAggregate

// Options configures an engine.
type Options struct {
	// Machine selects the simulated NUMA platform: "intel" (4 nodes, 40
	// cores), "amd" (8 nodes, 64 cores), "sgi" (64 nodes, 512 cores) or
	// "single" (no NUMA). Default "intel".
	Machine string
	// Workers limits the AEU count (0 = one per core of the machine).
	Workers int
	// Balancer enables the load balancer with the given algorithm:
	// "" (off), "oneshot", or "maN" for a moving average of window N
	// (e.g. "ma8").
	Balancer string
	// BalancerIntervalSec is the monitoring window in virtual seconds
	// (default 1.0; benchmarks use much shorter windows).
	BalancerIntervalSec float64
	// KeyBits bounds index keys (default 64, the paper's configuration).
	KeyBits int
	// ModelCaches enables the LLC simulator (slower, but reproduces the
	// paper's cache-locality effects). CacheScale divides the modeled LLC
	// capacity when the data is scaled down; 1 models the full machine.
	ModelCaches bool
	CacheScale  float64
	// MetricsAddr, when non-empty, serves the engine's metrics snapshot
	// as JSON over HTTP (GET /metrics) while the engine runs. Use
	// "127.0.0.1:0" for an ephemeral port; MetricsListenAddr reports the
	// bound address after Start.
	MetricsAddr string
	// ListenAddr, when non-empty, serves the engine over the eriswire TCP
	// protocol while it runs: Start binds the address and accepts
	// connections, Close drains them (in-flight requests finish and their
	// responses flush before the engine stops). Use "127.0.0.1:0" for an
	// ephemeral port; ServeAddr reports the bound address after Start.
	// Connect with the internal/client package or `erisload -remote`.
	ListenAddr string
	// MaxInFlight bounds concurrently executing requests per served
	// connection (0 = the server default); beyond it the connection's
	// reader stalls and TCP backpressure throttles the client.
	MaxInFlight int
	// GlobalInFlight bounds concurrently executing requests across ALL
	// served connections (0 = the server default). Beyond it requests
	// wait in a bounded queue (at most GlobalInFlight deep) and the
	// overflow is rejected with wire.ErrOverloaded instead of queueing
	// without bound.
	GlobalInFlight int
	// DefaultDeadline is applied to served requests that carry no
	// per-request deadline of their own (0 = no default). Requests that
	// exceed it are rejected with wire.ErrDeadlineExceeded.
	DefaultDeadline time.Duration
	// FaultSeed, when non-zero, enables the deterministic control-plane
	// fault-injection registry with this seed; arm faults with
	// DB.InjectFault. Zero (the default) disables injection entirely.
	FaultSeed int64
	// DataDir, when non-empty, makes the engine durable: every applied
	// write is logged to a per-AEU write-ahead log under this directory,
	// checkpoints snapshot the partitions, and Open recovers the durable
	// state of a previous run (latest checkpoint + log-tail replay,
	// verified with CheckInvariants) before serving. Empty keeps the
	// engine purely in-memory (the paper's configuration).
	DataDir string
	// SyncWrites, with DataDir set, releases write acks only after the
	// fsync covering their log records (group commit batches the waits).
	// Off, writes are still logged but an ack may precede its fsync: a
	// crash can lose the last commit group.
	SyncWrites bool
	// CheckpointEvery, with DataDir set, runs periodic background
	// checkpoints (log tails stay short, old logs are pruned). Zero
	// checkpoints only at Start and Close.
	CheckpointEvery time.Duration
}

// DB is an open engine instance.
type DB struct {
	engine    *core.Engine
	alg       balance.Algorithm
	nextID    routing.ObjectID
	byName    map[string]routing.ObjectID
	started   bool
	recovered *durable.Recovered

	listenAddr      string
	maxInFlight     int
	globalInFlight  int
	defaultDeadline time.Duration
	server          *server.Server
}

// Open builds an engine from options; create objects, optionally bulk-load
// them, then Start.
func Open(opts Options) (*DB, error) {
	if opts.Machine == "" {
		opts.Machine = "intel"
	}
	topo, err := topology.ByName(opts.Machine)
	if err != nil {
		return nil, err
	}
	var machineCfg numasim.Config
	if opts.ModelCaches {
		machineCfg.CacheScale = opts.CacheScale
		if machineCfg.CacheScale == 0 {
			machineCfg.CacheScale = 1
		}
	}
	alg, err := parseAlgorithm(opts.Balancer)
	if err != nil {
		return nil, err
	}
	// The fault injector is built here (not inside core.New) when a data
	// directory is in play, so the durability layer shares the engine's
	// deterministic decision stream.
	var inj *faults.Injector
	if opts.FaultSeed != 0 {
		inj = faults.New(opts.FaultSeed)
	}
	var mgr *durable.Manager
	var rec *durable.Recovered
	if opts.DataDir != "" {
		mgr, err = durable.Open(durable.Options{
			Dir:        opts.DataDir,
			SyncWrites: opts.SyncWrites,
			Faults:     inj,
			TearSeed:   opts.FaultSeed,
		})
		if err != nil {
			return nil, err
		}
		if rec, err = mgr.Recover(); err != nil {
			return nil, fmt.Errorf("eris: recovering %s: %w", opts.DataDir, err)
		}
	}
	cfg := core.Config{
		Topology:        topo,
		NumAEUs:         opts.Workers,
		Machine:         machineCfg,
		Tree:            prefixtree.Config{KeyBits: opts.KeyBits, PrefixBits: 8},
		Balance:         balance.Config{SampleIntervalSec: opts.BalancerIntervalSec},
		MetricsAddr:     opts.MetricsAddr,
		FaultSeed:       opts.FaultSeed,
		Durable:         mgr,
		CheckpointEvery: opts.CheckpointEvery,
	}
	cfg.Routing.Faults = inj
	e, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	db := &DB{
		engine: e, alg: alg, byName: make(map[string]routing.ObjectID),
		listenAddr: opts.ListenAddr, maxInFlight: opts.MaxInFlight,
		globalInFlight: opts.GlobalInFlight, defaultDeadline: opts.DefaultDeadline,
	}
	if rec != nil {
		if err := db.restore(rec); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// restore loads a recovered durable state into the fresh engine and
// re-registers the recovered objects under their saved names.
func (db *DB) restore(rec *durable.Recovered) error {
	if err := db.engine.Restore(rec); err != nil {
		return fmt.Errorf("eris: restoring recovered state: %w", err)
	}
	mgr := db.engine.Durable()
	for _, o := range rec.Objects {
		id := routing.ObjectID(o.ID)
		if id > db.nextID {
			db.nextID = id
		}
		name := o.Name
		if name == "" {
			// Objects written by an engine-level (nameless) session stay
			// reachable by a synthetic name.
			name = fmt.Sprintf("object-%d", o.ID)
		}
		db.byName[name] = id
		mgr.RegisterObject(o.ID, name)
		if db.alg != nil {
			if err := db.engine.Watch(id, db.alg); err != nil {
				return err
			}
		}
	}
	if err := db.engine.CheckInvariants(); err != nil {
		return fmt.Errorf("eris: recovered state failed invariant check: %w", err)
	}
	db.recovered = rec
	return nil
}

// Recovered reports whether Open loaded durable state from a previous
// run; recovered objects are reachable via Index and Column by name.
func (db *DB) Recovered() bool { return db.recovered != nil }

// Index returns a handle to an existing index by name (typically one
// recovered from the data directory).
func (db *DB) Index(name string) (*Index, error) {
	id, ok := db.byName[name]
	if !ok {
		return nil, fmt.Errorf("eris: no object %q", name)
	}
	if kind, err := db.engine.ObjectKind(id); err != nil || kind != routing.RangePartitioned {
		return nil, fmt.Errorf("eris: object %q is not an index", name)
	}
	domain, err := db.engine.Domain(id)
	if err != nil {
		return nil, err
	}
	return &Index{db: db, id: id, name: name, domain: domain}, nil
}

// Column returns a handle to an existing column by name (typically one
// recovered from the data directory).
func (db *DB) Column(name string) (*Column, error) {
	id, ok := db.byName[name]
	if !ok {
		return nil, fmt.Errorf("eris: no object %q", name)
	}
	if kind, err := db.engine.ObjectKind(id); err != nil || kind != routing.SizePartitioned {
		return nil, fmt.Errorf("eris: object %q is not a column", name)
	}
	return &Column{db: db, id: id, name: name}, nil
}

// Checkpoint cuts an engine-wide checkpoint on demand (no-op without a
// data directory); see Options.CheckpointEvery for the periodic variant.
func (db *DB) Checkpoint() error { return db.engine.Checkpoint() }

// Durable exposes the durability manager (nil without a data directory):
// log/checkpoint statistics and the crash-fault request flag.
func (db *DB) Durable() *durable.Manager { return db.engine.Durable() }

// CrashStop hard-stops the engine the way kill -9 would: pending calls
// fail, unwritten log buffers are dropped (with the torn_write fault
// armed, each log's unsynced tail is torn mid-record), and no final
// checkpoint is cut. The data directory is left as a crash would leave
// it, ready for recovery by the next Open. For tests and fault drills.
func (db *DB) CrashStop() {
	db.engine.CrashStop()
	if db.server != nil {
		db.server.Close()
		db.server = nil
	}
}

func parseAlgorithm(name string) (balance.Algorithm, error) {
	switch {
	case name == "":
		return nil, nil
	case name == "oneshot":
		return balance.OneShot{}, nil
	case len(name) > 2 && name[:2] == "ma":
		var w int
		if _, err := fmt.Sscanf(name[2:], "%d", &w); err != nil || w < 1 {
			return nil, fmt.Errorf("eris: bad balancer %q (want oneshot or maN)", name)
		}
		return balance.MovingAverage{Window: w}, nil
	default:
		return nil, fmt.Errorf("eris: bad balancer %q (want oneshot or maN)", name)
	}
}

// Engine exposes the underlying engine for advanced use (benchmark
// harnesses, counter inspection).
func (db *DB) Engine() *core.Engine { return db.engine }

func (db *DB) newObject(name string) (routing.ObjectID, error) {
	if _, dup := db.byName[name]; dup {
		return 0, fmt.Errorf("eris: object %q already exists", name)
	}
	db.nextID++
	db.byName[name] = db.nextID
	return db.nextID, nil
}

// dropObject rolls back the name registration after a failed create. The ID
// itself is never reused: a partially failed engine.CreateIndex may already
// have attached partitions under it, and handing the same ID to a later
// object would alias them.
func (db *DB) dropObject(name string) {
	delete(db.byName, name)
}

// Index is a range-partitioned prefix-tree index object.
type Index struct {
	db     *DB
	id     routing.ObjectID
	name   string
	domain uint64
}

// CreateIndex declares an index over the key domain [0, domain). Must be
// called before Start.
func (db *DB) CreateIndex(name string, domain uint64) (*Index, error) {
	id, err := db.newObject(name)
	if err != nil {
		return nil, err
	}
	if err := db.engine.CreateIndex(id, domain); err != nil {
		db.dropObject(name)
		return nil, err
	}
	if db.alg != nil {
		if err := db.engine.Watch(id, db.alg); err != nil {
			db.dropObject(name)
			return nil, err
		}
	}
	if mgr := db.engine.Durable(); mgr != nil {
		mgr.RegisterObject(uint32(id), name)
	}
	return &Index{db: db, id: id, name: name, domain: domain}, nil
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Domain returns the exclusive upper bound of the key domain.
func (ix *Index) Domain() uint64 { return ix.domain }

// LoadDense bulk-loads keys [0, n) before Start; valueOf nil stores the key
// as its own value.
func (ix *Index) LoadDense(n uint64, valueOf func(key uint64) uint64) error {
	return ix.db.engine.LoadIndexDense(ix.id, n, valueOf)
}

// Upsert inserts or overwrites pairs (engine must be started).
func (ix *Index) Upsert(kvs []KV) error {
	return ix.db.engine.Upsert(ix.id, kvs)
}

// Lookup returns the found pairs for keys, sorted by key.
func (ix *Index) Lookup(keys []uint64) ([]KV, error) {
	return ix.db.engine.Lookup(ix.id, keys)
}

// Delete removes keys (engine must be started); absent keys are ignored.
func (ix *Index) Delete(keys []uint64) error {
	return ix.db.engine.Delete(ix.id, keys)
}

// ScanRange aggregates values of keys in [lo, hi] matching pred.
func (ix *Index) ScanRange(lo, hi uint64, pred Predicate) (ScanResult, error) {
	return ix.db.engine.ScanRange(ix.id, lo, hi, pred)
}

// Rows materializes up to limit rows of [lo, hi] whose values match pred,
// sorted by key. This is the building block for query processing on top of
// the storage primitives (index-nested-loop joins and the like).
func (ix *Index) Rows(lo, hi uint64, pred Predicate, limit int) ([]KV, error) {
	return ix.db.engine.ScanRangeRows(ix.id, lo, hi, pred, limit)
}

// Column is a size-partitioned column object for full scans.
type Column struct {
	db   *DB
	id   routing.ObjectID
	name string
}

// CreateColumn declares a column object. Must be called before Start.
func (db *DB) CreateColumn(name string) (*Column, error) {
	id, err := db.newObject(name)
	if err != nil {
		return nil, err
	}
	if err := db.engine.CreateColumn(id); err != nil {
		db.dropObject(name)
		return nil, err
	}
	if db.alg != nil {
		if err := db.engine.Watch(id, db.alg); err != nil {
			db.dropObject(name)
			return nil, err
		}
	}
	if mgr := db.engine.Durable(); mgr != nil {
		mgr.RegisterObject(uint32(id), name)
	}
	return &Column{db: db, id: id, name: name}, nil
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// LoadUniform bulk-loads tuplesPerWorker values into every partition before
// Start; valueOf nil generates deterministic pseudo-random values.
func (c *Column) LoadUniform(tuplesPerWorker int64, valueOf func(worker int, i int64) uint64) error {
	return c.db.engine.LoadColumnUniform(c.id, tuplesPerWorker, valueOf)
}

// Scan aggregates all values matching pred across every partition, using
// multicast scan commands and scan sharing.
func (c *Column) Scan(pred Predicate) (ScanResult, error) {
	return c.db.engine.Scan(c.id, pred)
}

// Start launches the AEUs (and the balancer when enabled), then brings up
// the wire server when Options.ListenAddr is set.
func (db *DB) Start() error {
	if err := db.engine.Start(); err != nil {
		return err
	}
	db.started = true
	if db.listenAddr != "" {
		srv := server.New(db.engine, db.objectTable(), server.Options{
			MaxInFlight:     db.maxInFlight,
			GlobalInFlight:  db.globalInFlight,
			DefaultDeadline: db.defaultDeadline,
			Faults:          db.engine.Faults(),
		})
		if err := srv.Listen(db.listenAddr); err != nil {
			db.engine.Stop()
			return err
		}
		db.server = srv
	}
	return nil
}

// objectTable builds the Welcome object table the wire server announces.
func (db *DB) objectTable() []wire.ObjectInfo {
	out := make([]wire.ObjectInfo, 0, len(db.byName))
	for name, id := range db.byName {
		info := wire.ObjectInfo{ID: uint32(id), Name: name, Kind: wire.KindColumn}
		if kind, err := db.engine.ObjectKind(id); err == nil && kind == routing.RangePartitioned {
			info.Kind = wire.KindIndex
			info.Domain, _ = db.engine.Domain(id)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ServeAddr returns the wire server's bound address ("" when
// Options.ListenAddr was empty or Start has not run).
func (db *DB) ServeAddr() string {
	if db.server == nil {
		return ""
	}
	return db.server.Addr()
}

// Close stops the engine; safe to call multiple times. When the wire
// server is running it is drained first — in-flight remote requests
// complete and their responses flush before the engine goes down, so a
// write acknowledged over the wire is never lost to shutdown.
func (db *DB) Close() error {
	if db.server != nil {
		db.server.Close()
		db.server = nil
	}
	return db.engine.Close()
}

// Stats summarizes engine activity.
type Stats struct {
	Workers    int
	Operations int64
	// VirtualSeconds is the slowest worker's simulated time.
	VirtualSeconds float64
}

// Stats returns a snapshot of engine activity.
func (db *DB) Stats() Stats {
	return Stats{
		Workers:        db.engine.NumAEUs(),
		Operations:     db.engine.TotalOps(),
		VirtualSeconds: db.engine.MinClockSec(),
	}
}

// Workers returns the AEU handles for advanced instrumentation.
func (db *DB) Workers() []*aeu.AEU { return db.engine.AEUs() }

// FaultKinds lists the injectable fault kinds accepted by InjectFault:
// the control-plane kinds "drop_ack", "corrupt_frame", "fail_alloc",
// "delay_epoch_done", "stall_transfer", the wire-server kinds
// "drop_conn" (close a connection in place of a response) and
// "slow_write" (delay a response write), and the durability kinds
// "torn_write" (tear the unsynced log tail mid-record at crash),
// "fail_fsync" (fail a log fsync attempt; the group-commit writer
// retries) and "crash" (request a hard stop at a log append; poll
// Durable().CrashRequested and call CrashStop to honor it).
func FaultKinds() []string {
	kinds := faults.Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// InjectFault arms deterministic injection of one fault kind (see
// FaultKinds). The first `after` eligible events pass untouched, then every
// `every`-th event fails (every <= 1 fails each one), at most `limit` times
// (0 = unbounded). Decisions replay byte-for-byte for a given
// Options.FaultSeed; injection must have been enabled by a non-zero seed.
func (db *DB) InjectFault(kind string, after, every, limit int) error {
	k, err := faults.ParseKind(kind)
	if err != nil {
		return err
	}
	inj := db.engine.Faults()
	if inj == nil {
		return fmt.Errorf("eris: fault injection disabled (set Options.FaultSeed)")
	}
	inj.Arm(k, faults.Rule{After: after, Every: every, Limit: limit})
	return nil
}

// DisarmFaults removes every armed fault rule; injection counters remain
// visible in the metrics snapshot (faults.injected.*).
func (db *DB) DisarmFaults() {
	if inj := db.engine.Faults(); inj != nil {
		inj.DisarmAll()
	}
}

// CheckInvariants verifies routing-table/partition consistency and index
// counter integrity for every object. The engine must be quiescent (before
// Start or after Close).
func (db *DB) CheckInvariants() error { return db.engine.CheckInvariants() }

// BalanceReport summarizes the load balancer's cycle outcomes and
// fail-soft accounting.
type BalanceReport struct {
	Evaluations int64 // sampling evaluations run
	Cycles      int64 // cycles that published commands (any outcome)
	Completed   int64 // cycles every involved AEU acknowledged
	Aborted     int64 // cycles failed before publishing commands
	TimedOut    int64 // cycles whose ack wait expired
	Stopped     int64 // cycles interrupted by shutdown
	Retries     int64 // evaluations re-attempted after a failed cycle
	AcksDropped int64 // epoch acks lost on delivery
	AcksStale   int64 // stragglers from timed-out cycles
	LastError   string
}

// BalanceReport returns the balancer's fail-soft accounting.
func (db *DB) BalanceReport() BalanceReport {
	r := db.engine.Balancer().Report()
	return BalanceReport{
		Evaluations: r.Evaluations,
		Cycles:      r.Cycles,
		Completed:   r.Completed,
		Aborted:     r.Aborted,
		TimedOut:    r.TimedOut,
		Stopped:     r.Stopped,
		Retries:     r.Retries,
		AcksDropped: r.AcksDropped,
		AcksStale:   r.AcksStale,
		LastError:   r.LastError,
	}
}

// MetricsSnapshot captures every engine instrument — routing buffers,
// AEUs, balancer, memory managers, interconnect — at one instant. Pair two
// snapshots with Snapshot.Delta for interval rates; the snapshot marshals
// to JSON.
func (db *DB) MetricsSnapshot() metrics.Snapshot { return db.engine.MetricsSnapshot() }

// MetricsListenAddr returns the bound address of the metrics HTTP endpoint
// ("" when Options.MetricsAddr was empty or Start has not run).
func (db *DB) MetricsListenAddr() string { return db.engine.MetricsListenAddr() }
