package eris

import (
	"os"
	"runtime"
	"testing"
	"time"

	"eris/internal/client"
)

// TestDurableLifecycle is the public-API durability round trip: create,
// load, write, close cleanly, reopen — everything must come back, object
// handles reachable by name.
func TestDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Machine: "single", Workers: 4, DataDir: dir, SyncWrites: true}

	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if db.Recovered() {
		t.Fatal("fresh directory reported as recovered")
	}
	idx, err := db.CreateIndex("orders", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateColumn("prices")
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.LoadDense(500, func(k uint64) uint64 { return k * 10 }); err != nil {
		t.Fatal(err)
	}
	if err := col.LoadUniform(100, func(w int, i int64) uint64 { return uint64(i) }); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Upsert([]KV{{Key: 60000, Value: 42}}); err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete([]uint64{7}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Recovered() {
		t.Fatal("reopen did not recover")
	}
	idx2, err := db2.Index("orders")
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Domain() != 1<<16 {
		t.Fatalf("recovered domain %d", idx2.Domain())
	}
	col2, err := db2.Column("prices")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Index("prices"); err == nil {
		t.Fatal("column reachable as index")
	}
	if err := db2.Start(); err != nil {
		t.Fatal(err)
	}
	kvs, err := idx2.Lookup([]uint64{3, 7, 60000})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0] != (KV{Key: 3, Value: 30}) || kvs[1] != (KV{Key: 60000, Value: 42}) {
		t.Fatalf("recovered lookup = %+v", kvs)
	}
	res, err := col2.Scan(PredAll())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 4*100 {
		t.Fatalf("recovered column scan matched %d, want %d", res.Matched, 4*100)
	}
}

// TestDurableCrashOverWire drives writes over the eriswire TCP protocol,
// hard-kills the engine (CrashStop: no drain, no final checkpoint), and
// verifies every write acknowledged over the wire survives reopening.
// Both instances must also return the process to its goroutine baseline —
// a crash must not leak AEU loops, log writers, checkpoint tickers or
// server connections.
func TestDurableCrashOverWire(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	opts := Options{
		Machine: "single", Workers: 4,
		DataDir: dir, SyncWrites: true,
		CheckpointEvery: 20 * time.Millisecond,
		ListenAddr:      "127.0.0.1:0",
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("kv", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(db.ServeAddr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	obj := uint32(0)
	for _, o := range c.Objects() {
		if o.Name == "kv" {
			obj = o.ID
		}
	}
	if obj == 0 {
		t.Fatalf("object table %+v", c.Objects())
	}
	acked := make(map[uint64]uint64)
	for i := uint64(0); i < 150; i++ {
		kv := KV{Key: i * 13 % (1 << 20), Value: i + 1}
		if err := c.Upsert(obj, []KV{kv}); err != nil {
			break // engine may already be going down in a later variant
		}
		acked[kv.Key] = kv.Value
	}
	db.CrashStop()
	c.Close()
	if len(acked) == 0 {
		t.Fatal("no writes acked before crash")
	}

	db2, err := Open(Options{Machine: "single", Workers: 4, DataDir: dir, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if !db2.Recovered() {
		t.Fatal("crash directory did not recover")
	}
	idx2, err := db2.Index("kv")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Start(); err != nil {
		t.Fatal(err)
	}
	for k, v := range acked {
		kvs, err := idx2.Lookup([]uint64{k})
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != 1 || kvs[0].Value != v {
			t.Fatalf("acked write lost after crash: key %d got %+v want value %d", k, kvs, v)
		}
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked across the crash/recover cycle: %d at baseline, %d now",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecoveryTimeBudget is the CI recovery smoke: load a million keys,
// checkpoint, add a log tail, then measure cold Open-to-serving. The
// budget is deliberately generous (CI machines vary wildly); the recovery
// bench in results/ tracks the real numbers.
func TestRecoveryTimeBudget(t *testing.T) {
	const keys = 1 << 20
	dir, err := os.MkdirTemp("/dev/shm", "eris-recovery-")
	if err != nil {
		dir = t.TempDir()
	} else {
		defer os.RemoveAll(dir)
	}
	opts := Options{Machine: "single", Workers: 4, DataDir: dir, SyncWrites: true}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex("big", 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.LoadDense(keys, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	// A log tail on top of the initial checkpoint; the hard stop below
	// (no final checkpoint) forces recovery to replay it.
	batch := make([]KV, 64)
	for i := 0; i < 256; i++ {
		for j := range batch {
			batch[j] = KV{Key: uint64(i*64 + j), Value: 7}
		}
		if err := idx.Upsert(batch); err != nil {
			t.Fatal(err)
		}
	}
	db.CrashStop()

	start := time.Now()
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	idx2, err := db2.Index("big")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Start(); err != nil {
		t.Fatal(err)
	}
	kvs, err := idx2.Lookup([]uint64{100})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(kvs) != 1 || kvs[0].Value != 7 {
		t.Fatalf("post-recovery lookup = %+v", kvs)
	}
	st := db2.Durable().Stats()
	t.Logf("time-to-serve %d keys: %v (replayed %d records, %d bytes)",
		keys, elapsed, st.ReplayRecords, st.ReplayBytes)
	const budget = 60 * time.Second
	if elapsed > budget {
		t.Errorf("recovery took %v, budget %v", elapsed, budget)
	}
}

// BenchmarkRecoveryTimeToServe measures the full cold-start path — open
// the data directory, recover (checkpoint image + log replay on the first
// iteration, image-only after the first Start re-checkpoints), rebuild the
// engine and serve a first lookup — over a million-key index. Paired with
// BenchmarkWALReplay (internal/durable) this is the recovery performance
// record in results/recovery_bench.txt.
func BenchmarkRecoveryTimeToServe(b *testing.B) {
	const keys = 1 << 20
	dir, err := os.MkdirTemp("/dev/shm", "eris-recbench-")
	if err != nil {
		dir = b.TempDir()
	} else {
		defer os.RemoveAll(dir)
	}
	opts := Options{Machine: "single", Workers: 4, DataDir: dir, SyncWrites: true}
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := db.CreateIndex("big", 1<<21)
	if err != nil {
		b.Fatal(err)
	}
	if err := idx.LoadDense(keys, nil); err != nil {
		b.Fatal(err)
	}
	if err := db.Start(); err != nil {
		b.Fatal(err)
	}
	batch := make([]KV, 64)
	for i := 0; i < 256; i++ {
		for j := range batch {
			batch[j] = KV{Key: uint64(i*64 + j), Value: 7}
		}
		if err := idx.Upsert(batch); err != nil {
			b.Fatal(err)
		}
	}
	db.CrashStop()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !db.Recovered() {
			b.Fatal("directory did not recover")
		}
		idx, err := db.Index("big")
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Start(); err != nil {
			b.Fatal(err)
		}
		if _, err := idx.Lookup([]uint64{100}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.CrashStop()
		b.StartTimer()
	}
}

// TestDurableFaultKindsListed keeps the public fault-kind doc honest.
func TestDurableFaultKindsListed(t *testing.T) {
	want := map[string]bool{"torn_write": true, "fail_fsync": true, "crash": true}
	for _, k := range FaultKinds() {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("FaultKinds missing %v", want)
	}
}

// TestDurableThroughputParity guards the satellite acceptance criterion:
// with SyncWrites off, logging must cost no more than ~10% of in-memory
// write throughput. The data dir goes on tmpfs when available so the
// comparison measures the engine's logging overhead, not the CI disk's
// fsync latency (on a 1-core runner with ext4 barriers, raw fsync time
// dominates and says nothing about the data path — the 0-allocs guard
// and this test together pin the engine-side cost). Generous slack (1.5x
// vs the ~1.1x target) keeps scheduler noise out.
func TestDurableThroughputParity(t *testing.T) {
	const n = 20000
	run := func(dataDir string) time.Duration {
		opts := Options{Machine: "single", Workers: 4}
		if dataDir != "" {
			opts.DataDir = dataDir
		}
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		idx, err := db.CreateIndex("bench", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Start(); err != nil {
			t.Fatal(err)
		}
		kvs := make([]KV, 16)
		start := time.Now()
		for i := 0; i < n/len(kvs); i++ {
			for j := range kvs {
				kvs[j] = KV{Key: uint64(i*16+j) % (1 << 20), Value: uint64(i)}
			}
			if err := idx.Upsert(kvs); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	dir, err := os.MkdirTemp("/dev/shm", "eris-parity-")
	if err != nil {
		dir = t.TempDir()
		t.Logf("no tmpfs, measuring on disk (fsync latency will dominate)")
	} else {
		defer os.RemoveAll(dir)
	}
	base := run("")
	logged := run(dir)
	ratio := float64(logged) / float64(base)
	t.Logf("in-memory %v, logged %v (%.2fx)", base, logged, ratio)
	if logged > base*3/2 {
		t.Errorf("logged writes %.2fx slower than in-memory (budget 1.5x; target 1.1x)", ratio)
	}
}
