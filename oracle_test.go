package eris

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestModelOracle is the model-based property test: a stream of random
// upserts, deletes, lookups and range scans runs against the engine while a
// shadow map[uint64]uint64 plays oracle, with the load balancer actively
// reshaping partitions underneath. Lookups must return exactly the oracle's
// pairs, and aggregate range scans must match the oracle's count and sum —
// the coverage protocol makes them exact even mid-rebalance.
//
// Operations from the mutating goroutine are serialized against its own
// oracle updates, so every comparison point has a well-defined expected
// state. A second goroutine issues concurrent read-only traffic on other
// keys purely to keep the wires hot; its results are not checked.
func TestModelOracle(t *testing.T) {
	const (
		domain = 1 << 14
		steps  = 2000
		seed   = 42
	)
	db, err := Open(Options{Machine: "single", Workers: 4, Balancer: "ma3",
		BalancerIntervalSec: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("kv", domain)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.LoadDense(domain/4, func(k uint64) uint64 { return k * 7 }); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}

	oracle := make(map[uint64]uint64, domain/2)
	for k := uint64(0); k < domain/4; k++ {
		oracle[k] = k * 7
	}

	// Background noise: skewed lookups keep the balancer busy moving
	// partitions while the checked stream runs.
	stop := make(chan struct{})
	stopped := false
	var noise sync.WaitGroup
	noise.Add(1)
	go func() {
		defer noise.Done()
		rng := rand.New(rand.NewSource(seed + 1))
		keys := make([]uint64, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range keys {
				keys[i] = uint64(rng.Int63n(domain / 8)) // hot prefix
			}
			if _, err := idx.Lookup(keys); err != nil {
				return // engine shutting down
			}
		}
	}()
	defer func() {
		if !stopped { // a t.Fatal unwound us mid-run
			close(stop)
			noise.Wait()
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	randKeys := func(n int) []uint64 {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Int63n(domain))
		}
		return keys
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // upsert a batch
			keys := randKeys(1 + rng.Intn(32))
			kvs := make([]KV, len(keys))
			for i, k := range keys {
				kvs[i] = KV{Key: k, Value: uint64(rng.Int63())}
			}
			if err := idx.Upsert(kvs); err != nil {
				t.Fatalf("step %d: upsert: %v", step, err)
			}
			for _, kv := range kvs {
				oracle[kv.Key] = kv.Value
			}
		case op < 6: // delete a batch (some keys absent)
			keys := randKeys(1 + rng.Intn(16))
			if err := idx.Delete(keys); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			for _, k := range keys {
				delete(oracle, k)
			}
		case op < 9: // lookup a batch, compare exactly
			keys := randKeys(1 + rng.Intn(32))
			got, err := idx.Lookup(keys)
			if err != nil {
				t.Fatalf("step %d: lookup: %v", step, err)
			}
			// Oracle answer: one row per requested occurrence that exists —
			// the engine answers duplicate keys in a batch individually.
			var want []KV
			for _, k := range keys {
				if v, ok := oracle[k]; ok {
					want = append(want, KV{Key: k, Value: v})
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })
			sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
			if len(got) != len(want) {
				t.Fatalf("step %d: lookup(%v) = %d rows, oracle %d\n got %v\nwant %v",
					step, keys, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: lookup row %d = %+v, oracle %+v", step, i, got[i], want[i])
				}
			}
		default: // aggregate range scan with a random value predicate
			lo := uint64(rng.Int63n(domain))
			hi := lo + uint64(rng.Int63n(domain/4))
			if hi >= domain {
				hi = domain - 1
			}
			var pred Predicate
			switch rng.Intn(4) {
			case 0:
				pred = PredAll()
			case 1:
				pred = PredLess(uint64(rng.Int63()))
			case 2:
				pred = PredGreater(uint64(rng.Int63()))
			default:
				plo := uint64(rng.Int63())
				pred = PredBetween(plo, plo+uint64(rng.Int63n(1<<61)))
			}
			got, err := idx.ScanRange(lo, hi, pred)
			if err != nil {
				t.Fatalf("step %d: scan [%d,%d]: %v", step, lo, hi, err)
			}
			var matched, sum uint64
			for k, v := range oracle {
				if k >= lo && k <= hi && pred.Matches(v) {
					matched++
					sum += v
				}
			}
			if got.Matched != matched || got.Sum != sum {
				t.Fatalf("step %d: scan [%d,%d] pred %+v = {%d, %d}, oracle {%d, %d}",
					step, lo, hi, pred, got.Matched, got.Sum, matched, sum)
			}
		}
	}

	if cycles := db.BalanceReport(); cycles.Cycles == 0 {
		t.Log("note: balancer never cycled during the run; oracle still exact")
	}
	// Invariants want a quiescent engine: stop the noise, stop the engine,
	// then check.
	close(stop)
	noise.Wait()
	stopped = true
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatalf("invariants after oracle run: %v", err)
	}
}
