// Routing: a close-up of the NUMA-optimized data command routing layer
// (Figure 4 of the paper). The example issues unicast lookups and
// multicast scans, then prints the per-AEU outbox/inbox counters: how many
// commands were routed, how buffers batched them into flushes, and how the
// latch-free incoming buffers behaved under concurrent writers.
package main

import (
	"fmt"
	"log"
	"time"

	"eris"
	"eris/internal/aeu"
	"eris/internal/command"
	"eris/internal/workload"
)

func main() {
	db, err := eris.Open(eris.Options{Machine: "intel", Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	idx, err := db.CreateIndex("kv", 1<<16)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.LoadDense(1<<16, nil); err != nil {
		log.Fatal(err)
	}
	col, err := db.CreateColumn("facts")
	if err != nil {
		log.Fatal(err)
	}
	if err := col.LoadUniform(10_000, nil); err != nil {
		log.Fatal(err)
	}

	// Each AEU routes uniform lookups (unicast, split by partition table)
	// for half a millisecond of virtual time; AEU 0 additionally multicasts
	// a few full scans of the column (one command in its multicast table,
	// one reference per holder).
	db.Engine().SetGenerators(func(i int) aeu.Generator {
		start := -1.0
		scans := 0
		return aeu.GeneratorFunc(func(a *aeu.AEU) bool {
			if start < 0 {
				start = a.ClockNS()
			}
			if a.ClockNS()-start > 0.5e6 {
				return false
			}
			if i == 0 && scans < 4 {
				a.Outbox().RouteScan(2, eris.PredGreater(1<<32), command.NoReply, 0)
				scans++
			}
			keys := make([]uint64, 256)
			workload.FillBatch(workload.Uniform{Domain: 1 << 16}, a.Rng, 0, keys)
			a.Outbox().RouteLookup(1, keys, command.NoReply, 0)
			return true
		})
	})
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}
	if err := db.Engine().WaitVirtual(0.0005, time.Minute); err != nil {
		log.Fatal(err)
	}

	// A client-side scan for comparison (the engine injects one command per
	// holder instead of using an AEU's multicast buffers).
	if _, err := col.Scan(eris.PredGreater(1 << 32)); err != nil {
		log.Fatal(err)
	}
	db.Close()

	router := db.Engine().Router()
	fmt.Println("per-AEU routing layer counters:")
	fmt.Printf("  %-4s %12s %12s %10s %8s %14s %10s %9s\n",
		"AEU", "routed cmds", "routed keys", "multicasts", "flushes", "flushed bytes", "inbox B", "swaps")
	for i := 0; i < db.Engine().NumAEUs(); i++ {
		ob := router.Outbox(uint32(i)).Stats()
		ib := router.Inbox(uint32(i)).Stats()
		fmt.Printf("  %-4d %12d %12d %10d %8d %14d %10d %9d\n",
			i, ob.RoutedCommands, ob.RoutedKeys, ob.Multicasts, ob.Flushes, ob.FlushedBytes, ib.Bytes, ib.Swaps)
	}
	fmt.Println("\nreading the table:")
	fmt.Println("  - routed keys >> routed cmds: the router groups keys per owner into batch commands")
	fmt.Println("  - flushed bytes / flushes shows the buffer batching that amortizes remote latency")
	fmt.Println("  - inbox swaps count the latch-free double-buffer flips of each AEU")
}
