// Join: query processing composed from ERIS's storage primitives — the
// direction the paper's conclusions sketch as future work ("implement a
// query processing framework on top of ERIS"). The example runs an
// index-nested-loop join:
//
//	SELECT c.region, COUNT(*)
//	FROM   orders o JOIN customers c ON o.customer = c.id
//	WHERE  o.id BETWEEN 250000 AND 258191
//
// The probe side materializes order rows with a row-returning index range
// scan (an intermediate result routed between AEUs); the build side
// resolves the customer references with batched lookups that the AEUs
// coalesce into latency-hiding groups.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"eris"
)

const (
	numCustomers = 100_000
	numOrders    = 1 << 19
	numRegions   = 5
)

var regionNames = [numRegions]string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

func main() {
	db, err := eris.Open(eris.Options{Machine: "amd"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// customers: id -> region code.
	customers, err := db.CreateIndex("customers", numCustomers)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	regionOf := func(id uint64) uint64 {
		// Deterministic pseudo-random region per customer.
		x := id*2654435761 + 12345
		return (x >> 7) % numRegions
	}
	if err := customers.LoadDense(numCustomers, regionOf); err != nil {
		log.Fatal(err)
	}

	// orders: id -> customer id (a foreign key).
	orders, err := db.CreateIndex("orders", numOrders)
	if err != nil {
		log.Fatal(err)
	}
	if err := orders.LoadDense(numOrders, func(id uint64) uint64 {
		return uint64(rng.Intn(numCustomers))
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}

	// Probe side: materialize the order rows of the key range (the rows
	// travel back through the routing layer as an intermediate result).
	const lo, hi = 250_000, 258_191
	rows, err := orders.Rows(lo, hi, eris.PredAll(), hi-lo+1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe: %d order rows materialized from orders[%d..%d]\n", len(rows), lo, hi)

	// Build side: batched lookups of the referenced customers.
	customerIDs := make([]uint64, 0, len(rows))
	seen := make(map[uint64]bool, len(rows))
	for _, r := range rows {
		if !seen[r.Value] {
			seen[r.Value] = true
			customerIDs = append(customerIDs, r.Value)
		}
	}
	const batch = 1024
	region := make(map[uint64]uint64, len(customerIDs))
	for i := 0; i < len(customerIDs); i += batch {
		end := i + batch
		if end > len(customerIDs) {
			end = len(customerIDs)
		}
		kvs, err := customers.Lookup(customerIDs[i:end])
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range kvs {
			region[kv.Key] = kv.Value
		}
	}
	fmt.Printf("build: %d distinct customers resolved with batched lookups\n", len(region))

	// Aggregate.
	counts := map[uint64]int{}
	for _, r := range rows {
		counts[region[r.Value]]++
	}
	type row struct {
		region uint64
		n      int
	}
	var out []row
	for reg, n := range counts {
		out = append(out, row{reg, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].region < out[j].region })
	fmt.Println("\nregion       orders")
	fmt.Println("-----------  ------")
	total := 0
	for _, r := range out {
		fmt.Printf("%-11s  %6d\n", regionNames[r.region], r.n)
		total += r.n
	}
	fmt.Printf("-----------  ------\n%-11s  %6d\n", "total", total)

	st := db.Stats()
	fmt.Printf("\n%d storage operations over %d AEUs in %.4f simulated seconds\n",
		st.Operations, st.Workers, st.VirtualSeconds)
}
