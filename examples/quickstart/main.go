// Quickstart: open an ERIS engine on the simulated 4-socket Intel machine,
// create an index, load it, and run point lookups, upserts and a range
// scan through the public API.
package main

import (
	"fmt"
	"log"

	"eris"
)

func main() {
	db, err := eris.Open(eris.Options{Machine: "intel"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// DDL and bulk loading happen before Start: an index over the key
	// domain [0, 1M), preloaded with 100k dense keys.
	orders, err := db.CreateIndex("orders", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if err := orders.LoadDense(100_000, func(k uint64) uint64 { return k * 100 }); err != nil {
		log.Fatal(err)
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}

	// Point lookups route to the owning AEUs and return found pairs.
	kvs, err := orders.Lookup([]uint64{42, 99_999, 500_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lookup results:")
	for _, kv := range kvs {
		fmt.Printf("  key %6d -> value %d\n", kv.Key, kv.Value)
	}

	// Upserts insert new keys or overwrite existing values.
	if err := orders.Upsert([]eris.KV{
		{Key: 500_000, Value: 1},
		{Key: 42, Value: 4242},
	}); err != nil {
		log.Fatal(err)
	}
	kvs, _ = orders.Lookup([]uint64{42, 500_000})
	fmt.Println("after upsert:")
	for _, kv := range kvs {
		fmt.Printf("  key %6d -> value %d\n", kv.Key, kv.Value)
	}

	// An index range scan aggregates over a key interval.
	res, err := orders.ScanRange(0, 9_999, eris.PredGreater(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range scan [0, 9999]: %d values > 0, sum %d\n", res.Matched, res.Sum)

	st := db.Stats()
	fmt.Printf("engine: %d AEUs, %d storage operations, %.6f simulated seconds\n",
		st.Workers, st.Operations, st.VirtualSeconds)
}
