// Analytics: run filtered column scans on a larger NUMA machine (the
// 8-node AMD box) and inspect what the NUMA-aware engine does to the
// interconnect: scans are multicast to every partition-holding AEU,
// coalesced by scan sharing, and served almost entirely from node-local
// memory. The example prints the hardware-counter view (the software
// analogue of likwid) after the scan burst.
package main

import (
	"fmt"
	"log"

	"eris"
	"eris/internal/hwcounter"
)

func main() {
	db, err := eris.Open(eris.Options{Machine: "amd"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A "sensor readings" column: 64 AEUs x 50k tuples = 3.2M values.
	readings, err := db.CreateColumn("readings")
	if err != nil {
		log.Fatal(err)
	}
	const perWorker = 50_000
	err = readings.LoadUniform(perWorker, func(worker int, i int64) uint64 {
		// Synthetic sensor values 0..999 with a worker-dependent skew.
		return uint64((i*7919 + int64(worker)*13) % 1000)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}

	session := hwcounter.Start(db.Engine().Machine())

	queries := []struct {
		label string
		pred  eris.Predicate
	}{
		{"all readings", eris.PredAll()},
		{"readings < 100", eris.PredLess(100)},
		{"readings in [900, 999]", eris.PredBetween(900, 999)},
		{"readings == 500", eris.PredEqual(500)},
	}
	fmt.Println("filtered full scans (multicast to all 64 AEUs, scan sharing at each):")
	for _, q := range queries {
		res, err := readings.Scan(q.pred)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s matched %8d of %d, sum %d\n",
			q.label, res.Matched, 64*perWorker, res.Sum)
	}

	fmt.Println("\nhardware counters over the scan burst:")
	fmt.Print(session.Report())
	fmt.Println("note: every byte was served by a node-local memory controller — the scan reaches")
	fmt.Println("the machine's full aggregate local bandwidth, as in Figure 9/12 of the paper.")
}
