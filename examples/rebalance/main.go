// Rebalance: demonstrate the NUMA-aware load balancer adapting the range
// partitioning to a skewed workload (a small version of the paper's
// Figure 13 experiment). The workload hammers one quarter of the key
// domain; the balancer detects the imbalance, computes a target
// partitioning with the One-Shot algorithm, moves partitions with
// link/copy transfers, and the partition boundaries visibly shift toward
// the hot range.
package main

import (
	"fmt"
	"log"
	"time"

	"eris"
	"eris/internal/aeu"
	"eris/internal/command"
	"eris/internal/workload"
)

const domain = 1 << 18

func main() {
	db, err := eris.Open(eris.Options{
		Machine:             "amd",
		Workers:             16,
		Balancer:            "oneshot",
		BalancerIntervalSec: 0.001, // 1 ms virtual monitoring windows
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	idx, err := db.CreateIndex("accounts", domain)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.LoadDense(domain, nil); err != nil {
		log.Fatal(err)
	}

	printPartitioning(db, "initial (uniform) partitioning")

	// Skewed lookups: every AEU draws keys only from the first quarter of
	// the domain, overloading the AEUs that own it.
	hot := workload.HotRange{Lo: 0, Hi: domain / 4}
	db.Engine().SetGenerators(func(i int) aeu.Generator {
		return &lookupGen{keys: hot, durationSec: 0.05}
	})
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}
	if err := db.Engine().WaitVirtual(0.02, 2*time.Minute); err != nil {
		log.Fatal(err)
	}
	db.Close()

	printPartitioning(db, "partitioning after rebalancing under the skewed workload")

	fmt.Println("\nbalancing cycles executed:")
	for _, c := range db.Engine().Balancer().Cycles() {
		fmt.Printf("  t=%.4fs epoch %d (%s): imbalance %.2f, %d AEUs involved, ~%d tuples moved\n",
			c.TimeSec, c.Epoch, c.Algorithm, c.Imbalance, c.Involved, c.MovedEst)
	}
	st := db.Stats()
	fmt.Printf("\n%d lookups served in %.4f simulated seconds\n", st.Operations, st.VirtualSeconds)
}

// printPartitioning shows each AEU's key range and how much of the hot
// quarter it owns.
func printPartitioning(db *eris.DB, title string) {
	fmt.Println(title + ":")
	entries := db.Engine().Router().OwnerEntries(1)
	for i, e := range entries {
		hi := uint64(domain)
		if i+1 < len(entries) {
			hi = entries[i+1].Low
		}
		width := float64(hi-e.Low) / domain * 100
		marker := ""
		if e.Low < domain/4 {
			marker = "  <- in hot range"
		}
		fmt.Printf("  AEU %2d: [%7d, %7d)  %5.1f%% of domain%s\n", e.Owner, e.Low, hi, width, marker)
	}
}

// lookupGen issues batched lookups from a key generator for a virtual
// duration.
type lookupGen struct {
	keys        workload.KeyGen
	durationSec float64
	startNS     float64
	started     bool
	buf         []uint64
}

func (g *lookupGen) Generate(a *aeu.AEU) bool {
	if !g.started {
		g.started = true
		g.startNS = a.ClockNS()
		g.buf = make([]uint64, 512)
	}
	elapsed := (a.ClockNS() - g.startNS) / 1e9
	if elapsed >= g.durationSec {
		return false
	}
	workload.FillBatch(g.keys, a.Rng, elapsed, g.buf)
	a.Outbox().RouteLookup(1, g.buf, command.NoReply, 0)
	return true
}
