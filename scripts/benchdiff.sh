#!/usr/bin/env sh
# benchdiff.sh — compare hot-path benchmarks of the working tree against a
# base git ref.
#
# Usage: scripts/benchdiff.sh [base-ref] [bench-regexp]
#   base-ref      git ref to compare against (default: main)
#   bench-regexp  -bench filter (default: . — every benchmark)
#
# Runs the benchmarks of ./internal/... at the base ref (in a temporary
# worktree, so the working tree is untouched) and at HEAD+working tree,
# then diffs with benchstat when it is installed and falls back to printing
# both raw outputs side by side otherwise.
set -eu

BASE=${1:-main}
FILTER=${2:-.}
PKGS="./internal/..."
COUNT=${BENCHDIFF_COUNT:-6}
BENCHTIME=${BENCHDIFF_BENCHTIME:-50ms}

repo=$(git rev-parse --show-toplevel)
cd "$repo"

out=$(mktemp -d)
trap 'rm -rf "$out"; git worktree remove --force "$out/base" >/dev/null 2>&1 || true' EXIT

echo "== base: $BASE" >&2
git worktree add --detach "$out/base" "$BASE" >/dev/null
(cd "$out/base" && go test "$PKGS" -run=NONE -bench="$FILTER" \
	-benchtime="$BENCHTIME" -count="$COUNT" -benchmem) >"$out/old.txt"

echo "== head: $(git rev-parse --short HEAD) + working tree" >&2
go test "$PKGS" -run=NONE -bench="$FILTER" \
	-benchtime="$BENCHTIME" -count="$COUNT" -benchmem >"$out/new.txt"

# Fail loudly instead of printing an empty diff: a missing results file or
# a -bench filter matching nothing would otherwise look like "no change".
check_results() {
	if [ ! -s "$2" ]; then
		echo "benchdiff: no benchmark output for $1 ($2 missing or empty)" >&2
		exit 1
	fi
	if ! grep -q '^Benchmark' "$2"; then
		echo "benchdiff: no benchmarks matched filter '$FILTER' for $1; go test output was:" >&2
		tail -5 "$2" >&2
		exit 1
	fi
}
check_results "base $BASE" "$out/old.txt"
check_results "HEAD" "$out/new.txt"

if command -v benchstat >/dev/null 2>&1; then
	benchstat "$out/old.txt" "$out/new.txt"
else
	echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest)"
	echo "raw results follow; compare by hand."
	echo
	echo "---- $BASE ----"
	grep '^Benchmark' "$out/old.txt"
	echo
	echo "---- HEAD ----"
	grep '^Benchmark' "$out/new.txt"
fi
