#!/usr/bin/env sh
# vet.sh — the repo's lint gate, identical locally and in CI: gofmt,
# go vet, the in-tree erisvet analyzer suite (see internal/analysis and
# DESIGN.md "Static invariant enforcement"), and shellcheck over scripts/
# when it is installed.
#
# Deviation from the original plan: erisvet was meant to be built on a
# pinned golang.org/x/tools/go/analysis, but the build environment is
# hermetic (no module proxy), so internal/analysis implements the same
# analyzer surface on the standard library alone and there is nothing to
# pin in go.mod. Swapping the framework back for x/tools only touches
# internal/analysis; the analyzers and this entry point stay as they are.
set -eu

repo=$(git rev-parse --show-toplevel)
cd "$repo"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== erisvet"
go run ./cmd/erisvet ./...

echo "== shellcheck"
if command -v shellcheck >/dev/null 2>&1; then
	shellcheck scripts/*.sh
else
	echo "shellcheck not installed; skipping (the CI lint job runs it)"
fi
