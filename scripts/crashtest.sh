#!/usr/bin/env sh
# crashtest.sh — end-to-end kill -9 durability check.
#
# Usage: scripts/crashtest.sh [workload-seconds]
#   workload-seconds  how long the acked workload runs before the kill
#                     (default: 4; the server dies about a quarter in)
#
# Builds erisserve and erisload, starts the server with a data directory
# and -syncwrites, runs the acked upsert workload against it, kills the
# server with SIGKILL mid-workload, restarts it on the same directory and
# verifies every write that was acknowledged before the kill survived
# recovery. Exits non-zero on any lost acked write.
set -eu

DUR=${1:-4}

repo=$(git rev-parse --show-toplevel)
cd "$repo"

work=$(mktemp -d)
datadir="$work/data"
ackfile="$work/acks.txt"
srvlog="$work/server.log"
# srvpid must exist before the trap can reference it: under `set -u` an
# EXIT before the first start_server would otherwise die on the unbound
# variable instead of cleaning up.
srvpid=
trap 'kill "$srvpid" 2>/dev/null || true; rm -rf "$work"' EXIT

echo "== building"
go build -o "$work" ./cmd/erisserve ./cmd/erisload

start_server() {
	"$work/erisserve" -addr 127.0.0.1:0 -machine single -workers 4 \
		-keys 65536 -preload 0 -datadir "$datadir" -syncwrites \
		-checkpoint 50ms >"$srvlog" 2>&1 &
	srvpid=$!
	# Wait for the listen line and extract the bound address.
	i=0
	while ! grep -q '^listening on ' "$srvlog"; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "crashtest: server never announced its address" >&2
			cat "$srvlog" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(sed -n 's/^listening on //p' "$srvlog" | head -1)
}

echo "== first run: workload + kill -9"
start_server
"$work/erisload" -remote "$addr" -ackfile "$ackfile" \
	-dur "$DUR" -conns 2 -workers 4 &
loadpid=$!
sleep $((DUR / 4 + 1))
echo "== kill -9 $srvpid"
kill -9 "$srvpid"
wait "$loadpid"
if [ ! -s "$ackfile" ]; then
	echo "crashtest: no writes were acked before the kill" >&2
	exit 1
fi
echo "== $(wc -l <"$ackfile") acked keys recorded"

echo "== restart on $datadir and verify"
start_server
grep '^recovered from ' "$srvlog" || true
"$work/erisload" -remote "$addr" -ackfile "$ackfile" -verify
kill -INT "$srvpid"
wait "$srvpid"
echo "== crashtest passed: no acked write lost"
