module eris

go 1.23
