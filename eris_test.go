package eris

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"eris/internal/metrics"
)

func TestOpenDefaults(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Stats().Workers; got != 40 {
		t.Fatalf("default machine workers = %d, want 40 (intel)", got)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(Options{Machine: "cray"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := Open(Options{Balancer: "bogus"}); err == nil {
		t.Error("unknown balancer accepted")
	}
	if _, err := Open(Options{Balancer: "ma0"}); err == nil {
		t.Error("ma0 accepted")
	}
}

func TestIndexLifecycle(t *testing.T) {
	db, err := Open(Options{Machine: "single", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("orders", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("orders", 1<<16); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := idx.LoadDense(1000, func(k uint64) uint64 { return k * 10 }); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}

	kvs, err := idx.Lookup([]uint64{7, 999, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0] != (KV{Key: 7, Value: 70}) {
		t.Fatalf("lookup = %+v", kvs)
	}

	if err := idx.Upsert([]KV{{Key: 5000, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	kvs, err = idx.Lookup([]uint64{5000})
	if err != nil || len(kvs) != 1 || kvs[0].Value != 1 {
		t.Fatalf("after upsert: %+v, %v", kvs, err)
	}

	res, err := idx.ScanRange(0, 99, PredAll())
	if err != nil || res.Matched != 100 {
		t.Fatalf("scan range: %+v, %v", res, err)
	}
	rows, err := idx.Rows(5, 8, PredAll(), 10)
	if err != nil || len(rows) != 4 || rows[0].Key != 5 || rows[0].Value != 50 {
		t.Fatalf("rows: %+v, %v", rows, err)
	}
	if idx.Name() != "orders" || idx.Domain() != 1<<16 {
		t.Fatalf("metadata: %s %d", idx.Name(), idx.Domain())
	}
	if s := db.Stats(); s.Operations == 0 || s.VirtualSeconds <= 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestColumnLifecycle(t *testing.T) {
	db, err := Open(Options{Machine: "single", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateColumn("metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := col.LoadUniform(100, func(w int, i int64) uint64 { return uint64(i) }); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := col.Scan(PredLess(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 40 { // 4 workers x values 0..9
		t.Fatalf("scan matched %d", res.Matched)
	}
	if col.Name() != "metrics" {
		t.Fatal("name")
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    uint64
		want bool
	}{
		{PredAll(), 5, true},
		{PredLess(5), 4, true},
		{PredLess(5), 5, false},
		{PredGreater(5), 6, true},
		{PredEqual(5), 5, true},
		{PredBetween(2, 4), 3, true},
		{PredBetween(2, 4), 5, false},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("%+v.Matches(%d) = %v", c.p, c.v, got)
		}
	}
}

// TestFailedCreateRollsBackName is the regression test for the create
// rollback bug: a failed CreateIndex/CreateColumn left the name registered
// in db.byName, so the name was burned forever while no object existed.
func TestFailedCreateRollsBackName(t *testing.T) {
	db, err := Open(Options{Machine: "single", Workers: 4, Balancer: "oneshot"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Domain smaller than the AEU count: engine.CreateIndex fails after
	// the name was registered.
	if _, err := db.CreateIndex("orders", 2); err == nil {
		t.Fatal("domain 2 with 4 workers accepted")
	}
	if id, stale := db.byName["orders"]; stale {
		t.Fatalf("failed create left %q registered as id %d", "orders", id)
	}
	burned := db.nextID

	// The name must be reusable after the failure.
	idx, err := db.CreateIndex("orders", 1<<16)
	if err != nil {
		t.Fatalf("name not reusable after failed create: %v", err)
	}
	if idx.Name() != "orders" {
		t.Fatalf("reused name = %q", idx.Name())
	}
	// The failed create's ID must NOT be reused: a partially failed
	// engine create may have attached partitions under it.
	if idx.id <= burned {
		t.Fatalf("id %d reused after failed create (burned through %d)", idx.id, burned)
	}

	// Same rollback contract for columns.
	if _, err := db.CreateColumn("orders"); err == nil {
		t.Fatal("duplicate name accepted across kinds")
	}
	col, err := db.CreateColumn("events")
	if err != nil {
		t.Fatal(err)
	}
	if col.id <= idx.id {
		t.Fatalf("ids not monotonic: column %d after index %d", col.id, idx.id)
	}
	if got := db.byName["events"]; got != col.id {
		t.Fatalf("byName[events] = %d, want %d", got, col.id)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	db, err := Open(Options{Machine: "single", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("orders", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.LoadDense(1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	before := db.MetricsSnapshot()
	if _, err := idx.Lookup([]uint64{1, 2, 3, 40000}); err != nil {
		t.Fatal(err)
	}
	after := db.MetricsSnapshot()
	delta := after.Delta(before)

	if ops := delta.SumCounters("aeu.", ".ops"); ops <= 0 {
		t.Fatalf("aeu ops delta = %d after lookups", ops)
	}
	if app := after.SumCounters("routing.inbox.", ".appends"); app <= 0 {
		t.Fatalf("inbox appends = %d", app)
	}
	// Client commands inject straight into inboxes, so outbox flushes may
	// be zero here — but every AEU's outbox counters must be registered.
	if names := after.CounterNames("routing.outbox.", ".flushes"); len(names) != db.Stats().Workers {
		t.Fatalf("outbox flush counters = %v, want one per worker", names)
	}
	if _, ok := after.Gauges["mem.allocated_bytes_total"]; !ok {
		t.Fatal("mem.allocated_bytes_total missing")
	}
	if _, ok := after.Counters["machine.link_bytes_total"]; !ok {
		t.Fatal("machine.link_bytes_total missing")
	}
	if _, ok := after.Counters["balance.cycles"]; !ok {
		t.Fatal("balance.cycles missing")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	db, err := Open(Options{Machine: "single", Workers: 2, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateIndex("t", 1<<10); err != nil {
		t.Fatal(err)
	}
	if db.MetricsListenAddr() != "" {
		t.Fatal("endpoint bound before Start")
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	addr := db.MetricsListenAddr()
	if addr == "" {
		t.Fatal("no listen address after Start")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", resp.StatusCode, err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("endpoint body not a snapshot: %v", err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("endpoint snapshot has no counters")
	}
	db.Close()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("endpoint still serving after Close")
	}
}

func TestBalancerOption(t *testing.T) {
	db, err := Open(Options{Machine: "single", Workers: 4, Balancer: "ma2", BalancerIntervalSec: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("t", 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.LoadDense(1<<14, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Start(); err != nil {
		t.Fatal(err)
	}
	// Smoke: engine with the balancer goroutine running serves lookups.
	if _, err := idx.Lookup([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}
