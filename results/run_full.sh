#!/bin/bash
# Full-size reproduction run: one experiment at a time, bounded.
cd /root/repo
out=results/full_run.txt
: > $out
for id in table1 table2 fig5 fig9 fig10 fig11 fig12 ablation-buffer ablation-table ablation-coalesce ablation-transfer fig8a fig8b fig1 ablation-ma fig13 fig8c; do
  echo "=== START $id $(date +%H:%M:%S) ===" >> $out
  timeout 2400 ./results/erisbench "$id" >> $out 2>&1
  echo "=== END $id rc=$? $(date +%H:%M:%S) ===" >> $out
done
echo ALL_DONE >> $out
